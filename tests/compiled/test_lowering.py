"""The lowering's semantics contract: a lowered closure returns exactly
what the interpreter returns — same verdicts, same ``EvalError``s, same
messages — across every builtin between condition and every enumerable
environment, plus the arm-time behaviors (constant folding, adaptive
disjunct reordering, ``CompileError`` refusal, ``SlotMismatch``)."""

import itertools

import pytest

from repro.api import DEFAULT_REGISTRY
from repro.commutativity.bounded import enumerate_cases
from repro.commutativity.conditions import Kind
from repro.compiled import (CompiledAdmission, CompileError, SlotMismatch,
                            lower_pair_condition, pair_scope)
from repro.compiled.lowering import _AdaptiveOr
from repro.eval import Scope
from repro.eval.interpreter import EvalContext, EvalError, evaluate
from repro.logic import terms as t
from repro.logic.sorts import Sort

BUILTINS = ("Accumulator", "ListSet", "HashSet", "AssociationList",
            "HashTable", "ArrayList")

#: Differential-test scope: small enough to sweep every pair of every
#: builtin in seconds, big enough that ArrayList index arithmetic has
#: out-of-range cases (the EvalError-equality half of the contract).
DIFF_SCOPE = Scope(objects=("a", "b"), values=("x", "y"),
                   ints=(-1, 0, 1, 2), max_seq_len=2)

#: Cases per (pair, condition): beyond this the environments repeat
#: shapes without adding coverage.
CASES_PER_PAIR = 40


def _between_conditions(name):
    return [c for c in DEFAULT_REGISTRY.conditions(name)
            if c.kind is Kind.BETWEEN]


def _pair_env(op1, op2, case):
    """The exact environment the gatekeeper's interpreted path builds
    (between vocabulary only: s1, s2, suffixed params, r1)."""
    env = {"s1": case.state, "s2": case.mid}
    for param, value in zip(op1.params, case.args1):
        env[f"{param.name}1"] = value
    for param, value in zip(op2.params, case.args2):
        env[f"{param.name}2"] = value
    if op1.result_sort is not None:
        env["r1"] = case.r1
    return env


def _outcome(thunk):
    """(verdict, error message) — exactly one side is non-None."""
    try:
        return thunk(), None
    except EvalError as exc:
        return None, str(exc)


@pytest.mark.parametrize("name", BUILTINS)
def test_lowered_checks_match_the_interpreter(name):
    spec = DEFAULT_REGISTRY.spec(name)
    ctx = EvalContext(observe=spec.observe)
    compared = 0
    for cond in _between_conditions(name):
        op1 = spec.operations[cond.m1]
        op2 = spec.operations[cond.m2]
        check = lower_pair_condition(cond.dynamic_formula, op1, op2, ctx)
        cases = itertools.islice(
            enumerate_cases(spec, op1, op2, DIFF_SCOPE), CASES_PER_PAIR)
        for case in cases:
            env = _pair_env(op1, op2, case)
            expected = _outcome(
                lambda: evaluate(cond.dynamic_formula, env, ctx))
            got = _outcome(
                lambda: check.check(case.state, case.mid, case.args1,
                                    case.r1, case.args2))
            assert got == expected, (
                f"{name} {cond.m1};{cond.m2} diverged on {env}: "
                f"interpreter {expected}, compiled {got}")
            compared += 1
    assert compared > 0


def test_every_builtin_pair_lowers():
    """No catalog condition falls back to the interpreter at arm time:
    the vocabulary of the six builtins is fully lowerable."""
    for name in BUILTINS:
        spec = DEFAULT_REGISTRY.spec(name)
        ctx = EvalContext(observe=spec.observe)
        admission = CompiledAdmission(
            spec, ctx, conditions=DEFAULT_REGISTRY.conditions(name))
        assert admission.between, name
        assert all(c is not None for c in admission.between.values()), name


def test_constant_conditions_fold():
    """Accumulator's increase;increase condition is literally true:
    the lowerer folds it to a constant at arm time."""
    spec = DEFAULT_REGISTRY.spec("Accumulator")
    ctx = EvalContext(observe=spec.observe)
    admission = CompiledAdmission(
        spec, ctx, conditions=DEFAULT_REGISTRY.conditions("Accumulator"))
    check = admission.between_checker("increase", "increase")
    assert check.is_const and check.const is True
    assert admission.folded_count > 0


def _slot_op(name, nparams, result=None):
    from repro.specs.interface import Operation, Param
    params = tuple(Param(f"p{i}", Sort.INT) for i in range(nparams))
    return Operation(name=name, params=params, result_sort=result,
                     precondition=t.BoolConst(True),
                     semantics=lambda s, a: (s, None), mutator=False)


def test_pair_scope_layout():
    op1 = _slot_op("f", 2, result=Sort.INT)
    op2 = _slot_op("g", 1)
    scope = pair_scope(op1, op2)
    assert scope == {"s1": 0, "s2": 1, "p01": 2, "p11": 3, "p02": 4,
                     "r1": 5}


def test_slot_mismatch_on_arity_drift():
    op1 = _slot_op("f", 1)
    op2 = _slot_op("g", 1)
    ctx = EvalContext()
    check = lower_pair_condition(
        t.Eq(t.Var("p01", Sort.INT), t.Var("p02", Sort.INT)), op1, op2,
        ctx)
    assert check.check(None, None, (3,), None, (3,)) is True
    with pytest.raises(SlotMismatch):
        check.check(None, None, (3, 4), None, (3,))


def test_unknown_term_raises_compile_error():
    class Mystery(t.Term):
        @property
        def sort(self):
            return Sort.BOOL

    op = _slot_op("f", 0)
    with pytest.raises(CompileError):
        lower_pair_condition(Mystery(), op, op, EvalContext())


def test_unbound_variable_matches_interpreter_message():
    """An unbound variable is a lowering-time *deferral*, not an error:
    the closure raises the interpreter's exact EvalError when called."""
    op = _slot_op("f", 0)
    formula = t.Eq(t.Var("ghost", Sort.INT), t.IntConst(0))
    check = lower_pair_condition(formula, op, op, EvalContext())
    with pytest.raises(EvalError) as compiled_exc:
        check.check(None, None, (), None, ())
    with pytest.raises(EvalError) as interp_exc:
        evaluate(formula, {}, EvalContext())
    assert str(compiled_exc.value) == str(interp_exc.value)


def test_adaptive_or_reorders_by_hit_rate():
    """A disjunction of total disjuncts re-sorts itself: after enough
    calls in which only the *last* disjunct admits, it is tried first."""
    op1 = _slot_op("f", 1)
    op2 = _slot_op("g", 1)
    formula = t.Or((t.Eq(t.Var("p01", Sort.INT), t.IntConst(7)),
                    t.Lt(t.Var("p02", Sort.INT), t.IntConst(0)),
                    t.Eq(t.Var("p01", Sort.INT),
                         t.Var("p02", Sort.INT))))
    check = lower_pair_condition(formula, op1, op2, EvalContext())
    adaptive = check.fn
    assert isinstance(adaptive, _AdaptiveOr)
    first = adaptive.parts[0]
    last = adaptive.parts[-1]
    # Only the equality disjunct (lowered last) ever hits.
    for _ in range(200):
        assert check.check(None, None, (3,), None, (3,)) is True
    assert adaptive.parts[0] is last
    assert first in adaptive.parts  # reordered, never dropped
    # Reordering is decision-neutral: misses still miss.
    assert check.check(None, None, (3,), None, (4,)) is False


def test_adaptive_or_never_wraps_partial_disjuncts():
    """Reordering is only sound when no disjunct can raise: a partial
    disjunct (map lookup on an absent key can yield null comparisons,
    sequence indexing can raise) pins the written order."""
    spec = DEFAULT_REGISTRY.spec("ArrayList")
    ctx = EvalContext(observe=spec.observe)
    for cond in _between_conditions("ArrayList"):
        op1 = spec.operations[cond.m1]
        op2 = spec.operations[cond.m2]
        check = lower_pair_condition(cond.dynamic_formula, op1, op2, ctx)
        if isinstance(check.fn, _AdaptiveOr):
            assert check.total, (
                f"{cond.m1};{cond.m2}: adaptive Or wrapping a partial "
                f"disjunction would reorder which EvalError surfaces")
