"""Shared fixtures for the compiled-admission tests: the runnable
builtins + custom Register registry, and one session with compiled
drift-stable conditions (compiling the catalog once is the expensive
part, so it is module-scoped)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "api"))
sys.path.insert(0,
                str(Path(__file__).resolve().parent.parent / "stability"))

from stability_fixture import make_runnable_register_registry  # noqa: E402

from repro.api import Session  # noqa: E402
from repro.eval import Scope  # noqa: E402


@pytest.fixture(scope="module")
def runnable_registry():
    return make_runnable_register_registry()


@pytest.fixture(scope="module")
def stable_session():
    """A session whose registry carries compiled drift-stable
    conditions for every structure (builtins + Register)."""
    session = Session(registry=make_runnable_register_registry(),
                      scope=Scope(), cache=False)
    session.compile_stable()
    return session
