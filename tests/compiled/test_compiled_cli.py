"""CLI surface of the compiled tier: ``run --compiled``, the
``bench --compiled`` gate section, the ``bench --suite nogil`` scaling
report, and the schema checker CI runs against the artifact."""

import json
import sys
from argparse import Namespace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent
                       / "benchmarks"))

import check_schema  # noqa: E402

import repro.__main__ as cli  # noqa: E402
from repro.__main__ import main  # noqa: E402
from repro.api import DEFAULT_REGISTRY  # noqa: E402


def test_run_compiled(capsys):
    code = main(["run", "--name", "HashSet", "--compiled",
                 "--profile", "write-heavy", "--distribution", "hot-key",
                 "--txns", "6", "--ops", "5", "--preload", "12",
                 "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "compiled_hits=" in out
    assert "yes" in out  # the serializable column


def test_run_compiled_matches_interpreted_output(capsys):
    """The CLI's own report lines agree modulo the compiled counter:
    commits/aborts/ops are the decision-visible fields."""
    argv = ["run", "--name", "ArrayList", "--profile", "write-heavy",
            "--distribution", "hot-key", "--txns", "6", "--ops", "5",
            "--preload", "12", "--seed", "7"]
    assert main(argv) == 0
    interpreted = capsys.readouterr().out
    assert main(argv + ["--compiled"]) == 0
    compiled = capsys.readouterr().out

    def decisions(text):
        """Workload-report rows minus the ops/s column (the only
        timing-dependent field; everything else is decisions)."""
        rows = []
        for line in text.splitlines():
            cells = [c.strip() for c in line.split("|")]
            if cells[0] == "ArrayList" and len(cells) == 11:
                del cells[9]
                rows.append(cells)
        return rows

    assert decisions(compiled) == decisions(interpreted)
    assert decisions(compiled)


def test_bench_compiled_gate_section(capsys, monkeypatch):
    """The gate section compares every runnable builtin, records the
    schema the CI check validates, and passes on this hardware."""
    monkeypatch.setattr(cli, "COMPILED_GATE_REPEATS", 1)
    payload = {}
    failed = cli._bench_compiled_section(payload, DEFAULT_REGISTRY,
                                         Namespace(shards=1))
    out = capsys.readouterr().out
    section = payload["compiled_gate"]
    assert set(section["structures"]) == {
        "Accumulator", "ListSet", "HashSet", "AssociationList",
        "HashTable", "ArrayList"}
    for name, entry in section["structures"].items():
        assert entry["decisions_identical"] is True, name
        assert entry["compiled_hits"] > 0, name
    assert "speedup" in out
    # The gate itself (strict throughput win) is timing-dependent at
    # one repeat; decision identity and coverage must hold regardless.
    assert isinstance(failed, bool)
    assert not check_schema.check_payload(
        {"schema": 1, "suite": "runtime", "workers": 1, "shards": 1,
         "structures": {"x": {}}, "workloads": {}, "wall_seconds": 0.1,
         "compiled_gate": section},
        require_compiled_gate=True)


def test_bench_nogil_suite(tmp_path, capsys):
    output = tmp_path / "BENCH_nogil.json"
    code = main(["bench", "--suite", "nogil", "--output", str(output)])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(output.read_text())
    assert payload["suite"] == "nogil"
    assert payload["compiled"] is True
    assert payload["conflict_mode"] == "block"
    assert payload["workers_axis"] == [1, 2, 4]
    assert payload["shards_axis"] == [1, 8]
    # Pre-3.13 interpreters report the GIL probe as null, never a guess.
    assert payload["gil_enabled"] in (True, False, None)
    for name, grid in payload["structures"].items():
        for label, cells in grid.items():
            assert cells, (name, label)
            assert all(v > 0 for v in cells.values()), (name, label)
    assert "nogil" in out


# -- the schema checker CI runs before upload ---------------------------------

def _valid_payload():
    return {
        "schema": 1, "suite": "runtime", "workers": 1, "shards": 4,
        "structures": {"HashSet": {"elapsed": 0.01}},
        "workloads": {"w": {}}, "wall_seconds": 1.0,
        "compiled_gate": {
            "workload": "write-heavy-hotkey", "policy": "commutativity",
            "workers": 1, "shards": 4, "repeats": 4,
            "structures": {"HashSet": {
                "interpreted_committed_ops_per_second": 100.0,
                "compiled_committed_ops_per_second": 150.0,
                "speedup": 1.5, "compiled_hits": 10, "eval_errors": 0,
                "decisions_identical": True,
                "flat_sharded_identical": True,
            }},
        },
    }


def test_check_schema_accepts_a_valid_artifact(tmp_path, capsys):
    path = tmp_path / "BENCH_runtime.json"
    path.write_text(json.dumps(_valid_payload()))
    assert check_schema.main([str(path), "--require-compiled-gate"]) == 0
    assert "expected gate keys" in capsys.readouterr().out


def test_check_schema_rejects_missing_gate(tmp_path, capsys):
    payload = _valid_payload()
    del payload["compiled_gate"]
    path = tmp_path / "BENCH_runtime.json"
    path.write_text(json.dumps(payload))
    assert check_schema.main([str(path)]) == 0  # gate optional by default
    assert check_schema.main([str(path), "--require-compiled-gate"]) == 1
    assert "compiled_gate" in capsys.readouterr().err


def test_check_schema_rejects_dropped_gate_keys():
    payload = _valid_payload()
    del payload["compiled_gate"]["structures"]["HashSet"][
        "decisions_identical"]
    problems = check_schema.check_payload(payload,
                                          require_compiled_gate=True)
    assert any("decisions_identical" in p for p in problems)


def test_check_schema_rejects_wrong_types():
    payload = _valid_payload()
    payload["compiled_gate"]["structures"]["HashSet"]["compiled_hits"] \
        = "many"
    payload["wall_seconds"] = "fast"
    problems = check_schema.check_payload(payload,
                                          require_compiled_gate=True)
    assert len(problems) == 2


def test_check_schema_requires_flat_comparison_when_sharded():
    payload = _valid_payload()
    del payload["compiled_gate"]["structures"]["HashSet"][
        "flat_sharded_identical"]
    problems = check_schema.check_payload(payload,
                                          require_compiled_gate=True)
    assert any("flat_sharded_identical" in p for p in problems)
    payload["compiled_gate"]["shards"] = 1
    assert not check_schema.check_payload(payload,
                                          require_compiled_gate=True)


def test_check_schema_unreadable_file(tmp_path, capsys):
    assert check_schema.main([str(tmp_path / "missing.json")]) == 2
    assert "unreadable" in capsys.readouterr().err
