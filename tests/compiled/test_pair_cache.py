"""The process-global compiled-pair cache: content addressing, sharing
across managers, and the uncompilable-pair sentinel."""

import pytest

from repro.api import DEFAULT_REGISTRY
from repro.commutativity.conditions import Kind
from repro.compiled import (cache_size, clear_cache, compiled_pair,
                            pair_cache_key)
from repro.compiled.cache import UNCOMPILABLE
from repro.eval.interpreter import EvalContext
from repro.logic import terms as t
from repro.logic.sorts import Sort


@pytest.fixture
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def _between(name, m1, m2):
    return DEFAULT_REGISTRY.condition(name, m1, m2, Kind.BETWEEN)


def test_same_content_shares_one_closure(fresh_cache):
    spec = DEFAULT_REGISTRY.spec("HashSet")
    ctx = EvalContext(observe=spec.observe)
    cond = _between("HashSet", "add", "contains")
    first = compiled_pair(spec, "fp", cond, "between", ctx)
    size = cache_size()
    second = compiled_pair(spec, "fp", cond, "between", ctx)
    assert first is second  # the same object, not an equal relowering
    assert cache_size() == size


def test_label_and_domains_vary_the_key():
    spec = DEFAULT_REGISTRY.spec("HashSet")
    ctx = EvalContext(observe=spec.observe)
    cond = _between("HashSet", "add", "contains")
    base = pair_cache_key("fp", cond, "between", ctx)
    assert pair_cache_key("fp", cond, "stable:weakened", ctx) != base
    assert pair_cache_key("other-fp", cond, "between", ctx) != base
    bounded = EvalContext(observe=spec.observe, int_domain=(0, 1))
    assert pair_cache_key("fp", cond, "between", bounded) != base


def test_distinct_pairs_get_distinct_entries(fresh_cache):
    spec = DEFAULT_REGISTRY.spec("HashSet")
    ctx = EvalContext(observe=spec.observe)
    compiled_pair(spec, "fp", _between("HashSet", "add", "contains"),
                  "between", ctx)
    compiled_pair(spec, "fp", _between("HashSet", "add", "remove"),
                  "between", ctx)
    assert cache_size() == 2


def test_uncompilable_pair_is_cached_as_none(fresh_cache):
    class Mystery(t.Term):
        @property
        def sort(self):
            return Sort.BOOL

    class StubCondition:
        family = "Stub"
        m1 = "contains"
        m2 = "contains"
        text = "mystery"
        dynamic_text = None
        dynamic_formula = Mystery()

    spec = DEFAULT_REGISTRY.spec("HashSet")
    ctx = EvalContext(observe=spec.observe)
    cond = StubCondition()
    assert compiled_pair(spec, "fp", cond, "between", ctx) is UNCOMPILABLE
    assert cache_size() == 1
    # The CompileError is paid once: the miss is served from cache.
    assert compiled_pair(spec, "fp", cond, "between", ctx) is UNCOMPILABLE
    assert cache_size() == 1
