"""The invariant the compiled tier sells: lowering is an *accelerator*,
not a policy — ``--compiled`` on/off produces byte-identical decision
digests for every structure (six builtins + the custom Register), flat
and sharded, stable and plain, weakened and proved tiers; and the
EvalError diagnostics (satellite fix) carry the pair that failed."""

import dataclasses

import pytest
from stability_fixture import ALL_STRUCTURES

from repro.eval import Record
from repro.runtime import Gatekeeper, LoggedOperation
from repro.workloads import ThroughputHarness, WorkloadSpec

#: Write-heavy hot-key over a preloaded structure: the shape where the
#: compiled path actually carries traffic (deep logs, many pair checks).
GATE = WorkloadSpec(name="identity-gate", profile="write-heavy",
                    distribution="hot-key", transactions=10,
                    ops_per_transaction=6, key_space=24, value_space=3,
                    preload=16, seed=9)

#: A mixed profile so observer pairs (r1-dependent conditions) run too.
MIX = WorkloadSpec(name="identity-mix", profile="mixed",
                   distribution="hot-key", transactions=8,
                   ops_per_transaction=5, key_space=12, value_space=3,
                   preload=10, seed=2)


def _digest_pair(harness, structure, workload, *, shards, stable=False):
    interpreted = harness.run_one(structure, workload, workers=1,
                                  shards=shards, stable=stable,
                                  compiled=False)
    compiled = harness.run_one(structure, workload, workers=1,
                               shards=shards, stable=stable,
                               compiled=True)
    assert interpreted.serializable and compiled.serializable
    assert interpreted.compiled_hits == 0
    return interpreted, compiled


@pytest.mark.parametrize("shards", (1, 4))
@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_compiled_decisions_are_byte_identical(runnable_registry,
                                               structure, shards):
    harness = ThroughputHarness(registry=runnable_registry)
    for workload in (GATE, MIX):
        interpreted, compiled = _digest_pair(harness, structure,
                                             workload, shards=shards)
        assert compiled.compiled_hits > 0, structure
        assert compiled.report.decision_digest() \
            == interpreted.report.decision_digest(), (
                f"{structure} @ {shards} shards on {workload.name}")


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_compiled_stable_path_identity(stable_session, structure):
    """The stable (drift-guard) tier lowers too, with the same digest
    equality — and without losing a single stable-certified admission
    to the closure path."""
    harness = ThroughputHarness(registry=stable_session.registry)
    interpreted, compiled = _digest_pair(harness, structure, GATE,
                                         shards=4, stable=True)
    assert compiled.report.decision_digest() \
        == interpreted.report.decision_digest(), structure
    assert compiled.stable_hits == interpreted.stable_hits
    assert compiled.drift_fallbacks == interpreted.drift_fallbacks


def test_compiled_flat_equals_sharded(runnable_registry):
    """Orthogonality: with the compiler on, the sharded manager still
    matches the flat log decision-for-decision."""
    harness = ThroughputHarness(registry=runnable_registry)
    flat = harness.run_one("HashSet", GATE, workers=1, shards=1,
                           compiled=True)
    sharded = harness.run_one("HashSet", GATE, workers=1, shards=4,
                              compiled=True)
    assert flat.report.decision_digest() \
        == sharded.report.decision_digest()


@pytest.mark.parametrize("structure", ("HashSet", "ArrayList"))
def test_threaded_compiled_stays_serializable(runnable_registry,
                                              structure):
    """Decisions are scheduling-dependent at workers=4; the contract
    there is serializability with the closures actually in the loop."""
    harness = ThroughputHarness(registry=runnable_registry,
                                max_rounds=500_000)
    run = harness.run_one(structure, GATE, workers=4, shards=4,
                          compiled=True)
    assert run.serializable, run.summary()
    assert run.compiled_hits > 0


def test_tier_demotion_never_changes_decisions(stable_session):
    """Tier is provenance, not policy: flipping every HashTable stable
    condition's tier re-labels the hit counters (proved_hits vs
    stable_hits) but leaves the decision digest byte-identical, with
    closures armed either way."""
    registry = stable_session.registry
    original = registry.stable_conditions("HashTable")
    harness = ThroughputHarness(registry=registry)
    baseline = harness.run_one("HashTable", GATE, workers=1, shards=4,
                               stable=True, compiled=True)
    assert baseline.stable_hits > 0 and baseline.report.proved_hits == 0
    flipped = [dataclasses.replace(c, tier="proved") for c in original]
    registry.register_stable_conditions("HashTable", flipped,
                                        replace=True)
    try:
        promoted = harness.run_one("HashTable", GATE, workers=1,
                                   shards=4, stable=True, compiled=True)
    finally:
        registry.register_stable_conditions("HashTable", original,
                                            replace=True)
    assert promoted.report.proved_hits == baseline.stable_hits
    assert promoted.stable_hits == 0
    assert promoted.compiled_hits > 0
    assert promoted.report.decision_digest() \
        == baseline.report.decision_digest()


# -- satellite fix: EvalError samples name the failing pair -------------------

def _arraylist_eval_error(compiled):
    """The get(0)/set(1, ...) recipe: evaluating ArrayList's between
    condition on this environment indexes out of range, so the check
    resolves conservatively and must leave a usable diagnostic."""
    gk = Gatekeeper("ArrayList", compiled=compiled)
    state = Record(elems=("a",))
    gk.record(LoggedOperation(txn_id=1, op_name="get", args=(0,),
                              result="a", before=state, after=state))
    gk.admits(2, "set", (1, "x"), state)
    return gk


@pytest.mark.parametrize("compiled", (False, True))
def test_eval_error_sample_names_the_pair(compiled):
    gk = _arraylist_eval_error(compiled)
    assert gk.eval_errors == 1
    (sample,) = gk.eval_error_samples()
    assert sample["structure"] == "ArrayList"
    assert sample["m1"] == "get" and sample["m2"] == "set"
    assert "IndexError" in sample["error"] or sample["error"]
    assert sample["stable"] is False
    assert sample["condition"]  # the formula text, not a placeholder


def test_eval_error_counts_match_across_modes():
    """Interpreter-exact EvalError propagation: the compiled manager
    trips the same errors the interpreted one does, no more, no fewer."""
    interpreted = _arraylist_eval_error(compiled=False)
    compiled = _arraylist_eval_error(compiled=True)
    assert compiled.eval_errors == interpreted.eval_errors
    assert compiled.eval_error_samples() \
        == interpreted.eval_error_samples()


def test_eval_error_sample_reaches_the_report(runnable_registry):
    """End to end: a run that trips EvalErrors surfaces the bounded
    sample on its ExecutionReport (what the bench artifact uploads)."""
    harness = ThroughputHarness(registry=runnable_registry)
    run = harness.run_one("ArrayList", GATE, workers=1, shards=1,
                          compiled=True)
    if run.eval_errors:
        assert run.report.eval_error_sample
        for entry in run.report.eval_error_sample:
            assert set(entry) == {"structure", "m1", "m2", "condition",
                                  "error", "stable"}
