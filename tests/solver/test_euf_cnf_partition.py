"""Congruence closure, Tseitin CNF, and partition enumeration tests."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.logic import parse_formula
from repro.logic.sorts import Sort
from repro.logic.symbols import SymbolTable
from repro.eval import evaluate
from repro.solver import (AtomMap, CongruenceClosure, SatSolver,
                          bell_number, entails_equality, partitions,
                          restricted_growth_strings, to_cnf)


# -- congruence closure ---------------------------------------------------------

def test_transitivity():
    cc = CongruenceClosure()
    cc.merge("a", "b")
    cc.merge("b", "c")
    assert cc.are_equal("a", "c")
    assert not cc.are_equal("a", "d")


def test_congruence_propagation():
    cc = CongruenceClosure()
    cc.merge("a", "b")
    assert cc.are_equal(("f", "a"), ("f", "b"))


def test_nested_congruence():
    cc = CongruenceClosure()
    cc.merge("a", "b")
    assert cc.are_equal(("f", ("g", "a")), ("f", ("g", "b")))


def test_congruence_after_merge_of_applications():
    cc = CongruenceClosure()
    cc.merge(("f", "a"), "c")
    cc.merge("a", "b")
    assert cc.are_equal(("f", "b"), "c")


def test_disequality_consistency():
    cc = CongruenceClosure()
    cc.assert_distinct("a", "b")
    assert cc.is_consistent()
    cc.merge("a", "b")
    assert not cc.is_consistent()


def test_disequality_propagates_through_congruence():
    # f(a) != f(b) is violated as soon as a = b forces the
    # applications together — the inconsistency must surface through
    # the signature table, not just through direct merges.
    cc = CongruenceClosure()
    cc.assert_distinct(("f", "a"), ("f", "b"))
    assert cc.is_consistent()
    cc.merge("a", "b")
    assert not cc.is_consistent()


def test_disequality_propagates_through_nested_congruence():
    cc = CongruenceClosure()
    cc.assert_distinct(("f", ("g", "a")), ("f", ("g", "b")))
    cc.merge("a", "b")
    assert not cc.is_consistent()


def test_signature_table_congruence_on_nested_applications():
    # Merging leaves must propagate through two application layers
    # even when the outer applications were installed first (their
    # signatures are re-canonicalized as inner classes collapse).
    cc = CongruenceClosure()
    cc.merge(("f", ("g", "a")), "x")
    cc.merge(("f", ("g", "b")), "y")
    assert not cc.are_equal("x", "y")
    cc.merge("a", "b")
    assert cc.are_equal(("g", "a"), ("g", "b"))
    assert cc.are_equal("x", "y")


def test_signature_table_shared_subterms():
    cc = CongruenceClosure()
    cc.merge("a", "b")
    # Same function, mixed argument positions: congruent only when
    # every position's class matches.
    assert cc.are_equal(("f", "a", "c"), ("f", "b", "c"))
    assert not cc.are_equal(("f", "a", "c"), ("f", "c", "a"))


@given(st.permutations([("a", "b"), ("b", "c"), ("d", "e"),
                        (("f", "a"), "x"), (("f", "c"), "y")]))
def test_merge_order_independence(order):
    # The closure of a set of equalities is order-independent: every
    # permutation must entail the same queries (x = y via congruence
    # f(a) = f(c), and d's class staying separate).
    cc = CongruenceClosure()
    for a, b in order:
        cc.merge(a, b)
    assert cc.are_equal("x", "y")
    assert cc.are_equal(("f", "b"), "x")
    assert not cc.are_equal("a", "d")
    assert not cc.are_equal("x", "d")


def test_entails_equality_helper():
    assert entails_equality([("a", "b"), ("b", "c")], ("a", "c"))
    assert not entails_equality([("a", "b")], ("a", "c"))
    # Inconsistent premises entail anything.
    assert entails_equality([("a", "b")], ("x", "y"),
                            disequalities=[("a", "b")])


def test_classes():
    cc = CongruenceClosure()
    cc.merge("a", "b")
    cc.merge("c", "d")
    classes = cc.classes()
    members = {frozenset(v) for v in classes.values()}
    assert frozenset({"a", "b"}) in members
    assert frozenset({"c", "d"}) in members


# -- Tseitin CNF -------------------------------------------------------------------

TABLE = SymbolTable(vars={"p": Sort.BOOL, "q": Sort.BOOL, "r": Sort.BOOL})


@pytest.mark.parametrize("text", [
    "p & q", "p | q", "p --> q", "p <-> q", "~(p & (q | ~r))",
    "(p --> q) & (q --> r) --> (p --> r)",
])
def test_cnf_equisatisfiable_pointwise(text):
    formula = parse_formula(text, TABLE)
    atoms = AtomMap()
    clauses, root = to_cnf(formula, atoms)
    # For each assignment of p/q/r: formula true iff CNF+root satisfiable
    # under assumptions fixing the atom variables.
    for p, q, r in itertools.product((False, True), repeat=3):
        env = {"p": p, "q": q, "r": r}
        expected = evaluate(formula, env)
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        solver.add_clause([root])
        assumptions = []
        for atom, var in atoms.atom_to_var.items():
            truth = evaluate(atom, env)
            assumptions.append(var if truth else -var)
        assert solver.solve(tuple(assumptions)).satisfiable == expected


def test_tautology_detection_via_cnf():
    formula = parse_formula("p | ~p", TABLE)
    atoms = AtomMap()
    clauses, root = to_cnf(parse_formula("~(p | ~p)", TABLE), atoms)
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    solver.add_clause([root])
    assert not solver.solve().satisfiable
    assert formula is not None


# -- partitions ---------------------------------------------------------------------

@pytest.mark.parametrize("n,count", [(0, 1), (1, 1), (2, 2), (3, 5),
                                     (4, 15), (5, 52), (6, 203)])
def test_partition_counts_are_bell_numbers(n, count):
    assert sum(1 for _ in restricted_growth_strings(n)) == count
    assert bell_number(n) == count


def test_partitions_are_distinct_and_canonical():
    seen = set(restricted_growth_strings(4))
    assert len(seen) == 15
    for rgs in seen:
        assert rgs[0] == 0
        for i in range(1, len(rgs)):
            assert rgs[i] <= max(rgs[:i]) + 1


def test_partitions_as_maps():
    parts = list(partitions(("x", "y")))
    assert {tuple(sorted(p.items())) for p in parts} == {
        (("x", 0), ("y", 0)), (("x", 0), ("y", 1))}


@given(st.integers(0, 7))
def test_rgs_count_matches_bell(n):
    assert sum(1 for _ in restricted_growth_strings(n)) == bell_number(n)
