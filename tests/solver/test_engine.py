"""Symbolic-engine tests: agreement with the bounded oracle, unbounded
base-state reasoning, and detection of wrong conditions."""

import pytest

from repro.commutativity import (CommutativityCondition, Kind,
                                 check_condition, condition)
from repro.eval import Scope
from repro.solver import SymInt, SymSet, SymMap
from repro.solver.engine import (check_condition_symbolic,
                                 check_conditions_symbolic, map_cases,
                                 set_cases)
from repro.eval.values import FMap
from repro.specs import get_spec


def test_symint_arithmetic_and_equality():
    n = SymInt("N", 0)
    assert n.plus(1).plus(-1) == n
    assert n.plus(1) != n
    assert SymInt(None, 3) == 3
    assert SymInt("N", 1) != SymInt("M", 1)


def test_symset_membership_updates():
    s = SymSet(FMap({"c0": True, "c1": False}))
    assert "c0" in s and "c1" not in s
    assert "c1" in s.add("c1")
    assert "c0" not in s.remove("c0")
    with pytest.raises(KeyError):
        "zz" in s  # untracked tokens are an error, not False


def test_symmap_binding():
    m = SymMap(FMap({"k0": "w0"}), frozenset({"k0", "k1"}))
    assert "k0" in m and "k1" not in m
    assert m.lookup("k1") is None
    assert m.put("k1", "w0").lookup("k1") == "w0"
    assert "k0" not in m.remove("k0")
    with pytest.raises(KeyError):
        m.lookup("zz")


def test_set_case_enumeration_shape():
    spec = get_spec("Set")
    add = spec.operations["add"]
    cases = list(set_cases(add, add))
    # partitions of {v1,v2}: 2; memberships: 2^1 + 2^2 = 6 total cases.
    assert len(cases) == 6
    sizes = {case[0]["size"] for case in cases}
    assert sizes == {SymInt("N", 0)}


def test_map_case_enumeration_includes_fresh_sharing():
    spec = get_spec("Map")
    put = spec.operations["put"]
    cases = list(map_cases(put, put))
    assert cases
    # Some case must have two distinct keys both bound to the same fresh
    # value (shared unknown base binding).
    shared = False
    for state, args1, args2 in cases:
        binding = state["contents"].binding
        fresh = [v for v in binding.values() if v.startswith("f")]
        if len(fresh) == 2 and fresh[0] == fresh[1]:
            shared = True
    assert shared


@pytest.mark.parametrize("family,m1,m2", [
    ("Set", "contains", "add"),
    ("Set", "add", "remove"),
    ("Map", "get", "put"),
    ("Map", "put", "put"),
    ("Accumulator", "increase", "read"),
    ("ArrayList", "add_at", "indexOf"),
    ("ArrayList", "remove_at", "remove_at"),
])
def test_symbolic_verifies_catalog_pairs(family, m1, m2):
    spec = get_spec(family)
    for kind in Kind:
        cond = condition(family, m1, m2, kind)
        result = check_condition_symbolic(spec, cond,
                                          Scope(max_seq_len=3))
        assert result.verified, result.summary()


@pytest.mark.parametrize("text,direction", [
    ("true", "soundness"),
    ("false", "completeness"),
    ("v1 ~= v2", "completeness"),
])
def test_symbolic_catches_wrong_conditions(text, direction):
    spec = get_spec("Set")
    wrong = CommutativityCondition(family="Set", m1="contains", m2="add",
                                   kind=Kind.BEFORE, text=text, spec=spec)
    result = check_condition_symbolic(spec, wrong)
    assert not result.verified
    assert any(c.direction == direction for c in result.counterexamples)


def test_symbolic_and_bounded_agree_on_mutations():
    """Backend cross-validation: for deliberately mutated conditions both
    backends must reach the same verdict."""
    spec = get_spec("Map")
    scope = Scope(objects=("a", "b"), values=("x", "y"))
    mutations = [
        ("get", "put", "k1 ~= k2"),                    # incomplete
        ("get", "put", "true"),                        # unsound
        ("get", "remove", "k1 ~= k2 | s1.containsKey(k1) = true"),
        ("remove", "remove", "k1 ~= k2 | s1.containsKey(k1) = false"),
    ]
    for m1, m2, text in mutations:
        cond = CommutativityCondition(family="Map", m1=m1, m2=m2,
                                      kind=Kind.BEFORE, text=text,
                                      spec=spec)
        bounded = check_condition(spec, cond, scope)
        symbolic = check_condition_symbolic(spec, cond)
        assert bounded.verified == symbolic.verified, text
        if not bounded.verified:
            b_dirs = {c.direction for c in bounded.counterexamples}
            s_dirs = {c.direction for c in symbolic.counterexamples}
            assert b_dirs & s_dirs, text


def test_symbolic_base_state_is_genuinely_unbounded():
    """The symbolic set state never enumerates base elements: sizes stay
    relative to the opaque N, so the verdict covers sets of any size."""
    spec = get_spec("Set")
    cond = condition("Set", "size", "add", Kind.BEFORE)
    result = check_condition_symbolic(spec, cond)
    assert result.verified
    # With only one object argument the case count is tiny (one symbol,
    # two membership patterns) yet the claim is universal.
    assert result.cases <= 4


def test_check_conditions_symbolic_requires_single_pair():
    spec = get_spec("Set")
    c1 = condition("Set", "add", "add", Kind.BEFORE)
    c2 = condition("Set", "add", "remove", Kind.BEFORE)
    with pytest.raises(ValueError):
        check_conditions_symbolic(spec, [c1, c2])
