"""CDCL SAT solver tests: units, classic hard instances, and a
property-based comparison against brute force."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.solver import SatSolver


def test_empty_is_sat():
    assert SatSolver().solve().satisfiable


def test_unit_clause():
    s = SatSolver()
    s.add_clause([1])
    result = s.solve()
    assert result.satisfiable and result.model[1] is True


def test_contradiction():
    s = SatSolver()
    s.add_clause([1])
    s.add_clause([-1])
    assert not s.solve().satisfiable


def test_tautological_clause_ignored():
    s = SatSolver()
    s.add_clause([1, -1])
    s.add_clause([-2])
    result = s.solve()
    assert result.satisfiable and result.model.get(2, False) is False


def test_simple_implication_chain():
    s = SatSolver()
    # 1 -> 2 -> 3 -> 4, with 1 asserted.
    s.add_clause([1])
    for a, b in ((1, 2), (2, 3), (3, 4)):
        s.add_clause([-a, b])
    result = s.solve()
    assert result.satisfiable
    assert all(result.model[v] for v in (1, 2, 3, 4))


def _pigeonhole(holes: int) -> SatSolver:
    """holes+1 pigeons into `holes` holes — classically UNSAT."""
    pigeons = holes + 1
    def var(p, h):
        return p * holes + h + 1
    s = SatSolver()
    for p in range(pigeons):
        s.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([-var(p1, h), -var(p2, h)])
    return s


def test_pigeonhole_unsat():
    assert not _pigeonhole(4).solve().satisfiable


def test_pigeonhole_relaxed_sat():
    # holes pigeons into holes holes is satisfiable.
    holes = 4
    def var(p, h):
        return p * holes + h + 1
    s = SatSolver()
    for p in range(holes):
        s.add_clause([var(p, h) for h in range(holes)])
    for h in range(holes):
        for p1 in range(holes):
            for p2 in range(p1 + 1, holes):
                s.add_clause([-var(p1, h), -var(p2, h)])
    assert s.solve().satisfiable


def test_assumptions():
    s = SatSolver()
    s.add_clause([-1, 2])
    assert s.solve(assumptions=(1,)).model[2] is True
    s2 = SatSolver()
    s2.add_clause([-1, 2])
    s2.add_clause([-2])
    assert not s2.solve(assumptions=(1,)).satisfiable


def test_enumerate_models():
    s = SatSolver()
    s.add_clause([1, 2])
    models = list(s.enumerate_models(variables=(1, 2)))
    assert len(models) == 3
    assert {(m[1], m[2]) for m in models} == {
        (True, False), (False, True), (True, True)}


def _brute_force_sat(clauses, num_vars):
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {v + 1: bits[v] for v in range(num_vars)}
        if all(any(assignment[abs(lit)] == (lit > 0) for lit in clause)
               for clause in clauses):
            return True
    return False


clause_strategy = st.lists(
    st.lists(st.sampled_from([1, -1, 2, -2, 3, -3, 4, -4, 5, -5]),
             min_size=1, max_size=4),
    min_size=1, max_size=12)


@settings(max_examples=150, deadline=None)
@given(clause_strategy)
def test_agrees_with_brute_force(clauses):
    s = SatSolver()
    for clause in clauses:
        s.add_clause(clause)
    result = s.solve()
    assert result.satisfiable == _brute_force_sat(clauses, 5)
    if result.satisfiable:
        # The returned model must actually satisfy every clause.
        model = {v: result.model.get(v, False) for v in range(1, 6)}
        assert all(any(model[abs(lit)] == (lit > 0) for lit in clause)
                   for clause in clauses)
