"""Runtime tests: gatekeeper admission, rollback correctness, and the
serializability property of speculative execution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import Record
from repro.runtime import (Gatekeeper, LoggedOperation,
                           SpeculativeExecutor)


def _logged(txn_id, op, args, result, before):
    return LoggedOperation(txn_id=txn_id, op_name=op, args=args,
                           result=result, before=before,
                           after=before)


def test_gatekeeper_admits_commuting_ops():
    gk = Gatekeeper("HashSet")
    s0 = Record(contents=frozenset(), size=0)
    gk.record(_logged(1, "contains", ("a",), False, s0))
    # Different element: commutes.
    assert gk.admits(2, "add", ("b",), s0)
    # Same element, contains returned False: does not commute (Fig 2-2).
    assert not gk.admits(2, "add", ("a",), s0)


def test_gatekeeper_same_transaction_never_conflicts():
    gk = Gatekeeper("HashSet")
    s0 = Record(contents=frozenset(), size=0)
    gk.record(_logged(1, "contains", ("a",), False, s0))
    assert gk.admits(1, "add", ("a",), s0)


def test_gatekeeper_uses_return_values():
    gk = Gatekeeper("HashSet")
    s1 = Record(contents=frozenset({"a"}), size=1)
    # contains(a) returned True: add(a) commutes even for equal elements.
    gk.record(_logged(1, "contains", ("a",), True, s1))
    assert gk.admits(2, "add", ("a",), s1)


def test_gatekeeper_policies_ordering():
    """mutex <= read-write <= commutativity in permissiveness."""
    s0 = Record(contents=frozenset({"a"}), size=1)
    for op2, args2, expect in ((("contains"), ("b",), True),
                               (("add"), ("b",), True)):
        commutative = Gatekeeper("HashSet", "commutativity")
        rw = Gatekeeper("HashSet", "read-write")
        mutex = Gatekeeper("HashSet", "mutex")
        for gk in (commutative, rw, mutex):
            gk.record(_logged(1, "contains", ("a",), True, s0))
        assert commutative.admits(2, op2, args2, s0) is expect
        assert mutex.admits(2, op2, args2, s0) is False
        if rw.admits(2, op2, args2, s0):
            assert commutative.admits(2, op2, args2, s0)


def test_gatekeeper_release():
    gk = Gatekeeper("HashSet")
    s0 = Record(contents=frozenset(), size=0)
    gk.record(_logged(1, "add", ("a",), True, s0))
    assert len(gk.outstanding()) == 1
    gk.release(1)
    assert gk.outstanding() == []


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        Gatekeeper("HashSet", "optimistic-unicorn")


# -- end-to-end speculative execution ----------------------------------------------

DISJOINT_SET_PROGRAMS = [
    [("add", ("a1",)), ("add", ("a2",)), ("contains", ("a1",))],
    [("add", ("b1",)), ("remove", ("b2",))],
    [("add", ("c1",)), ("contains", ("c2",))],
]


def test_disjoint_workload_runs_without_aborts():
    report = SpeculativeExecutor("HashSet", "commutativity",
                                 seed=7).run(DISJOINT_SET_PROGRAMS)
    assert report.commits == 3
    assert report.aborts == 0
    assert report.serializable


def test_read_write_policy_aborts_disjoint_workload():
    """The motivation for semantic commutativity: RW conflict detection
    serializes workloads that actually commute."""
    report = SpeculativeExecutor("HashSet", "read-write",
                                 seed=7).run(DISJOINT_SET_PROGRAMS)
    assert report.aborts > 0
    assert report.serializable


def test_conflicting_workload_still_serializable():
    programs = [
        [("add", ("x",)), ("remove", ("y",))],
        [("contains", ("x",)), ("add", ("y",))],
        [("size", ()), ("add", ("x",))],
    ]
    for seed in range(5):
        report = SpeculativeExecutor("HashSet", "commutativity",
                                     seed=seed).run(programs)
        assert report.commits == 3
        assert report.serializable, report.summary()


def test_map_workload():
    programs = [
        [("put", ("k1", "x")), ("get", ("k1",))],
        [("put", ("k2", "y")), ("containsKey", ("k3",))],
        [("remove", ("k3",)), ("size", ())],
    ]
    report = SpeculativeExecutor("HashTable", "commutativity",
                                 seed=3).run(programs)
    assert report.commits == 3
    assert report.serializable


def test_arraylist_workload_with_rollback():
    programs = [
        [("add_at", (0, "a")), ("add_at", (0, "b"))],
        [("add_at", (0, "c")), ("set", (0, "d"))],
    ]
    for seed in range(4):
        report = SpeculativeExecutor("ArrayList", "commutativity",
                                     seed=seed).run(programs)
        assert report.commits == 2
        assert report.serializable


def test_accumulator_workload_all_commute():
    programs = [[("increase", (i,))] * 3 for i in (1, 2, 5)]
    report = SpeculativeExecutor("Accumulator", "commutativity",
                                 seed=0).run(programs)
    assert report.aborts == 0
    assert report.final_state["value"] == 3 * (1 + 2 + 5)


# -- property-based serializability --------------------------------------------------

_ops = st.sampled_from([
    ("add", ("a",)), ("add", ("b",)), ("remove", ("a",)),
    ("remove", ("c",)), ("contains", ("b",)), ("size", ()),
    ("add_", ("c",)), ("remove_", ("b",)),
])
_programs = st.lists(st.lists(_ops, min_size=1, max_size=4),
                     min_size=1, max_size=4)


@settings(max_examples=40, deadline=None)
@given(_programs, st.integers(0, 1000), st.sampled_from(("ListSet",
                                                         "HashSet")))
def test_serializability_property(programs, seed, name):
    """Whatever the interleaving, the committed execution equals its
    serial replay in commit order — the guarantee the verified
    commutativity conditions + inverses provide."""
    report = SpeculativeExecutor(name, "commutativity",
                                 seed=seed).run(programs)
    assert report.commits == len(programs)
    assert report.serializable


# -- blocking conflict mode -------------------------------------------------------

def test_block_mode_disjoint_workload():
    report = SpeculativeExecutor("HashSet", "commutativity", seed=7,
                                 conflict_mode="block") \
        .run(DISJOINT_SET_PROGRAMS)
    assert report.commits == 3
    assert report.aborts == 0
    assert report.serializable


def test_block_mode_waits_instead_of_aborting():
    """Under read-write detection the disjoint workload conflicts
    constantly; blocking resolves almost all of it without rollbacks."""
    abort_mode = SpeculativeExecutor("HashSet", "read-write", seed=7)
    block_mode = SpeculativeExecutor("HashSet", "read-write", seed=7,
                                     conflict_mode="block")
    aborts_when_aborting = abort_mode.run(DISJOINT_SET_PROGRAMS).aborts
    blocked = block_mode.run(DISJOINT_SET_PROGRAMS)
    assert blocked.serializable
    assert blocked.aborts <= aborts_when_aborting


def test_block_mode_breaks_deadlocks():
    """Mutex policy blocks everyone instantly; the deadlock breaker must
    still drive the system to completion."""
    programs = [
        [("add", ("x",)), ("add", ("y",))],
        [("add", ("y",)), ("add", ("x",))],
    ]
    report = SpeculativeExecutor("HashSet", "mutex", seed=1,
                                 conflict_mode="block").run(programs)
    assert report.commits == 2
    assert report.serializable


def test_unknown_conflict_mode_rejected():
    with pytest.raises(ValueError):
        SpeculativeExecutor("HashSet", conflict_mode="wait-die")


@settings(max_examples=25, deadline=None)
@given(_programs, st.integers(0, 500))
def test_block_mode_serializability_property(programs, seed):
    report = SpeculativeExecutor("HashSet", "commutativity", seed=seed,
                                 conflict_mode="block").run(programs)
    assert report.commits == len(programs)
    assert report.serializable
