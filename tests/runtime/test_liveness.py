"""Liveness under an exhausted scheduling budget: hitting
``max_rounds`` must resolve into a report — committed prefix kept and
replay-validated, live transactions rolled back — never an exception
escaping ``run()`` or a hung scheduler."""

import pytest

from repro.runtime import RoundsExhausted, SpeculativeExecutor
from repro.runtime.executor import TxnStatus
from repro.workloads import WorkloadGenerator, WorkloadSpec


def _hotkey_workload(seed=43):
    """The write-heavy hot-key shape: every transaction hammers the
    same few keys, so conflicts (and aborted-retry churn) are the
    common case — the shape that exhausts small budgets."""
    return WorkloadSpec(profile="write-heavy", distribution="hot-key",
                        transactions=6, ops_per_transaction=5,
                        key_space=8, value_space=3, preload=6,
                        seed=seed)


def _generate(structure, workload):
    generator = WorkloadGenerator()
    return (generator.generate(structure, workload),
            generator.generate_setup(structure, workload))


@pytest.mark.parametrize("structure", ["HashSet", "ArrayList"])
def test_exhausted_budget_resolves_into_a_quenched_report(structure):
    programs, setup = _generate(structure, _hotkey_workload())
    executor = SpeculativeExecutor(structure, max_rounds=2)
    report = executor.run(programs, setup=setup)

    assert report.rounds_exhausted == 1
    # Nothing is left mid-flight: every transaction either committed
    # or was rolled back.
    assert all(status is not TxnStatus.RUNNING
               for status in report.txn_statuses.values())
    assert len(report.commit_order) < len(programs)
    # The committed prefix is still serializable — the quench rolled
    # back every speculative effect, so the concrete state equals the
    # serial replay of the commit order.
    assert report.serializable
    assert report.committed_operations == sum(
        len(programs[txn_id]) for txn_id in report.commit_order)


def test_a_sufficient_budget_never_reports_exhaustion():
    workload = _hotkey_workload()
    programs, setup = _generate("HashSet", workload)
    report = SpeculativeExecutor("HashSet").run(programs, setup=setup)
    assert report.rounds_exhausted == 0
    assert report.serializable
    assert set(report.commit_order) == set(range(len(programs)))


def test_quenched_and_clean_runs_share_the_committed_prefix_rules():
    """The quench is a truncation, not a different execution: with the
    same seed, the quenched run's commit order is a prefix of the
    clean run's."""
    workload = _hotkey_workload()
    programs, setup = _generate("HashSet", workload)
    quenched = SpeculativeExecutor("HashSet", max_rounds=2).run(
        programs, setup=setup)
    clean = SpeculativeExecutor("HashSet").run(programs, setup=setup)
    prefix = len(quenched.commit_order)
    assert quenched.commit_order == clean.commit_order[:prefix]


def test_rounds_exhausted_is_an_executor_exception_type():
    """The exception is part of the runtime API (schedulers raise it,
    ``run()`` resolves it) and must stay a RuntimeError so existing
    broad handlers keep working."""
    assert issubclass(RoundsExhausted, RuntimeError)
