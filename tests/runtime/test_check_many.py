"""Edge cases of the batched admission entry point ``check_many``:
empty batches, conflicts discovered mid-batch, and EvalError fallback
decided per-pair rather than per-batch."""

from repro.eval import Record
from repro.runtime import Gatekeeper, LoggedOperation
from repro.runtime.gatekeeper import ShardedGatekeeper


def _seq_state(*elems):
    return Record(elems=tuple(elems))


# -- empty batches ------------------------------------------------------------

def test_empty_log_admits_trivially():
    gk = Gatekeeper("ArrayList")
    admitted, holder = gk.check_many(1, "set", (0, "x"), _seq_state("a"))
    assert admitted is True and holder is None
    assert gk.checks == 0 and gk.conflicts == 0


def test_empty_shard_set_checks_nothing():
    """An explicit empty ``shard_ids`` is authoritative: nothing is
    scanned even when the log holds a conflicting pair."""
    gk = Gatekeeper("ArrayList")
    state = _seq_state("a")
    gk.record(LoggedOperation(txn_id=1, op_name="set", args=(0, "b"),
                              result=None, before=state,
                              after=_seq_state("b")))
    admitted, holder = gk.check_many(2, "set", (0, "x"),
                                     _seq_state("b"), shard_ids=())
    assert admitted is True and holder is None
    assert gk.checks == 0


def test_own_operations_are_skipped():
    gk = Gatekeeper("ArrayList")
    state = _seq_state("a")
    gk.record(LoggedOperation(txn_id=1, op_name="set", args=(0, "b"),
                              result=None, before=state,
                              after=_seq_state("b")))
    admitted, holder = gk.check_many(1, "set", (0, "x"), _seq_state("b"))
    assert admitted is True and holder is None
    assert gk.checks == 0  # self-pairs are not checks


# -- conflicts mid-batch ------------------------------------------------------

def test_partial_admission_stops_at_the_first_conflict():
    """A batch that admits its first pair (via the EvalError fallback
    oracle, no less) and conflicts on its second reports the second
    pair's holder — and counts exactly one conflict."""
    gk = Gatekeeper("ArrayList")
    wide = _seq_state(*["a"] * 9)
    # Pair 1: a read logged against a one-element snapshot — checking
    # set(8, ...) against it EvalErrors (index 8 off a 1-element
    # state) and lands on the region oracle, which admits the
    # disjoint bands.
    gk.record(LoggedOperation(txn_id=1, op_name="get", args=(0,),
                              result="a", before=_seq_state("a"),
                              after=_seq_state("a")))
    # Pair 2: an outstanding write to the same index — a certain
    # conflict.
    gk.record(LoggedOperation(txn_id=1, op_name="set", args=(8, "b"),
                              result=None, before=wide, after=wide))
    admitted, holder = gk.check_many(2, "set", (8, "x"), wide)
    assert admitted is False and holder == 1
    assert gk.fallbacks == 1 and gk.fallback_admits == 1
    assert gk.conflicts == 1


def test_holder_identifies_the_conflicting_transaction():
    """Wait-die ordering needs the *first* conflicting holder in log
    order, not just a boolean."""
    gk = Gatekeeper("ArrayList")
    state = _seq_state("a", "b")
    for txn_id in (4, 7):
        gk.record(LoggedOperation(txn_id=txn_id, op_name="set",
                                  args=(0, f"v{txn_id}"), result=None,
                                  before=state, after=state))
    admitted, holder = gk.check_many(9, "set", (0, "x"), state)
    assert admitted is False and holder == 4


# -- EvalError fallback, per pair --------------------------------------------

def test_eval_error_mid_batch_is_decided_per_pair():
    """One unevaluable pair must not poison the batch: the fallback
    refuses or admits *that pair* by the region oracle and the sweep
    continues."""
    gk = Gatekeeper("ArrayList")
    # Same-band unevaluable pair: conservative conflict.
    state = _seq_state("a")
    gk.record(LoggedOperation(txn_id=1, op_name="get", args=(0,),
                              result="a", before=state, after=state))
    admitted, holder = gk.check_many(2, "set", (1, "x"), state)
    assert admitted is False and holder == 1
    assert gk.fallbacks == 1 and gk.fallback_admits == 0

    # Disjoint-band unevaluable pair: the oracle admits, and the
    # admitted verdict comes back through the same batched path.
    wide = _seq_state(*["a"] * 9)
    admitted, holder = gk.check_many(2, "set", (8, "x"), wide)
    assert admitted is True and holder is None
    assert gk.fallbacks == 2 and gk.fallback_admits == 1


# -- sharded batches ----------------------------------------------------------

def test_sharded_check_many_respects_the_shard_ids_contract():
    gk = ShardedGatekeeper("ArrayList", shards=4)
    state = _seq_state("a", "b", "c")
    gk.record(LoggedOperation(txn_id=1, op_name="get", args=(0,),
                              result="a", before=state, after=state))
    shard_ids = gk.shards_for("set", (0, "x"))
    admitted, holder = gk.check_many(2, "set", (0, "x"), state,
                                     shard_ids=shard_ids)
    assert admitted is False and holder == 1
    # The empty-batch contract holds under sharding too.
    admitted, holder = gk.check_many(2, "set", (0, "x"), state,
                                     shard_ids=())
    assert admitted is True and holder is None
