"""Executor edge cases: deadlock-breaker behaviour, abort-status
surfacing, unified concrete dispatch, and the multi-worker mode."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Registry
from repro.eval import Record
from repro.impls import invoke, invoke_concrete
from repro.runtime import (ExecutionReport, Gatekeeper,
                           SpeculativeExecutor, Transaction, TxnStatus)
from repro.specs.interface import (DataStructureSpec, Operation, Param,
                                   parse_pre)
from repro.logic.sorts import Sort


def _executor(**kwargs):
    return SpeculativeExecutor("HashSet", "commutativity", **kwargs)


def _fresh_state(executor):
    impl = executor.registry.new_instance(executor.ds_name)
    gatekeeper = Gatekeeper(executor.ds_name, executor.policy,
                            registry=executor.registry)
    report = ExecutionReport(ds_name=executor.ds_name,
                             policy=executor.policy)
    return impl, gatekeeper, report


# -- deadlock breaker ----------------------------------------------------------

def test_break_deadlock_all_transactions_at_op_zero():
    """All-blocked with every transaction at next_op == 0: nothing can
    be rolled back, the lowest-id transaction survives, and no aborts
    are counted."""
    executor = _executor(conflict_mode="block")
    impl, gatekeeper, report = _fresh_state(executor)
    transactions = [Transaction(i, [("add", ("a",))]) for i in range(3)]
    blocked = {0, 1, 2}
    survivor = executor._break_deadlock(transactions, blocked, impl,
                                        gatekeeper, report)
    assert survivor.txn_id == 0          # tie on next_op=0 -> lowest id
    assert report.aborts == 0            # nothing to roll back
    assert blocked == {1, 2}             # only the survivor may proceed
    assert all(t.status is TxnStatus.RUNNING for t in transactions)


def test_break_deadlock_survivor_tie_breaking():
    """Ties on next_op go to the lowest transaction id; more-advanced
    transactions always win over less-advanced ones."""
    executor = _executor(conflict_mode="block")
    impl, gatekeeper, report = _fresh_state(executor)
    ops = [("add", ("a",))] * 4
    transactions = [Transaction(i, list(ops)) for i in range(4)]
    transactions[1].next_op = 2
    transactions[3].next_op = 2
    transactions[2].next_op = 1
    blocked = {0, 1, 2, 3}
    survivor = executor._break_deadlock(transactions, blocked, impl,
                                        gatekeeper, report)
    assert survivor.txn_id == 1          # max next_op, then lowest id
    assert blocked == {0, 2, 3}


def test_break_deadlock_aborts_only_transactions_with_progress():
    """Victims that executed operations are rolled back and counted;
    victims still at op 0 are merely blocked."""
    executor = _executor(conflict_mode="block")
    impl, gatekeeper, report = _fresh_state(executor)
    transactions = [Transaction(i, [("add", (f"x{i}",)), ("size", ())])
                    for i in range(3)]
    # Execute txn 2's first op for real so its rollback has work to do.
    executor._step(transactions[2], impl, gatekeeper, report, set())
    assert impl.abstract_state()["size"] == 1
    blocked = {0, 1, 2}
    # txn 2 is most advanced: it survives, nobody has progress to abort.
    assert executor._break_deadlock(transactions, blocked, impl,
                                    gatekeeper, report).txn_id == 2
    assert report.aborts == 0
    # Now block txn 2 again with txn 0 advanced further via next_op.
    transactions[0].next_op = 2
    blocked = {0, 1, 2}
    survivor = executor._break_deadlock(transactions, blocked, impl,
                                        gatekeeper, report)
    assert survivor.txn_id == 0
    assert report.aborts == 1            # txn 2's progress rolled back
    assert transactions[2].status is TxnStatus.ABORTED
    assert impl.abstract_state()["size"] == 0


def test_block_mode_deadlock_storm_converges():
    """Mutex + block over many transactions triggers repeated deadlock
    episodes; every one must make progress."""
    programs = [[("add", (f"k{i % 3}",)), ("contains", ("k0",))]
                for i in range(6)]
    report = SpeculativeExecutor("HashSet", "mutex", seed=3,
                                 conflict_mode="block").run(programs)
    assert report.commits == 6
    assert report.serializable


# -- abort-status surfacing ----------------------------------------------------

def test_mark_aborted_sets_aborted_status():
    txn = Transaction(0, [("add", ("a",))])
    txn.next_op = 1
    txn.mark_aborted()
    assert txn.status is TxnStatus.ABORTED
    assert txn.next_op == 0
    assert txn.aborts == 1
    assert txn.ever_aborted
    txn.restart()
    assert txn.status is TxnStatus.RUNNING
    assert txn.aborts == 1


def test_report_surfaces_per_transaction_aborts():
    programs = [
        [("contains", ("x",)), ("add", ("x",))],
        [("add", ("x",)), ("remove", ("x",))],
        [("add", ("disjoint",))],
    ]
    report = SpeculativeExecutor("HashSet", "read-write",
                                 seed=1).run(programs)
    assert report.commits == 3
    assert set(report.txn_aborts) == {0, 1, 2}
    assert sum(report.txn_aborts.values()) == report.aborts
    assert report.aborts > 0
    assert report.ever_aborted  # at least one transaction retried
    assert all(status is TxnStatus.COMMITTED
               for status in report.txn_statuses.values())


def test_report_timing_fields():
    report = SpeculativeExecutor("HashSet").run([[("add", ("a",))]])
    assert report.wall_seconds > 0
    assert report.ops_per_second > 0
    assert report.conflict_rate == 0.0


def test_unrun_report_is_not_serializable():
    """Regression: with both states still None, ``None == None`` made a
    never-executed report read as vacuously serializable."""
    report = ExecutionReport(ds_name="HashSet", policy="commutativity")
    assert report.final_state is None and report.serial_state is None
    assert report.serializable is False
    report = SpeculativeExecutor("HashSet").run([[("add", ("a",))]])
    assert report.serializable is True


def test_committed_operations_exclude_retried_work():
    programs = [
        [("contains", ("x",)), ("add", ("x",))],
        [("add", ("x",)), ("remove", ("x",))],
    ]
    report = SpeculativeExecutor("HashSet", "read-write",
                                 seed=1).run(programs)
    assert report.committed_operations == 4  # one copy of each program
    assert report.operations >= report.committed_operations
    assert report.committed_ops_per_second > 0


# -- unified concrete dispatch -------------------------------------------------

def test_invoke_concrete_keeps_raw_result_for_discard_variants():
    from repro.api import DEFAULT_REGISTRY
    impl = DEFAULT_REGISTRY.new_instance("HashSet")
    op = DEFAULT_REGISTRY.spec("HashSet").operations["add_"]
    raw, visible = invoke_concrete(impl, op, ("a",))
    assert raw is True and visible is None
    # String names keep the trailing-underscore convention.
    raw, visible = invoke_concrete(impl, "remove_", ("a",))
    assert raw is True and visible is None
    assert invoke(impl, "add", ("b",)) is True


def _cell_registry():
    """A custom structure whose discard variant does NOT follow the
    trailing-underscore naming convention: only ``base_name`` links
    ``writeQuiet`` to the concrete ``write`` method."""

    class CellImpl:
        def __init__(self):
            self.value = "init"

        def write(self, v):
            old = self.value
            self.value = v
            return old

        def abstract_state(self):
            return Record(value=self.value)

    fields = {"value": Sort.OBJ}
    params = (Param("v", Sort.OBJ),)
    pre = parse_pre("v ~= null", fields, params, {}, None)

    def write_sem(state, args):
        return Record(value=args[0]), state["value"]

    def write_quiet_sem(state, args):
        return Record(value=args[0]), None

    operations = {
        "write": Operation(name="write", params=params,
                           result_sort=Sort.OBJ, precondition=pre,
                           semantics=write_sem, mutator=True),
        "writeQuiet": Operation(name="writeQuiet", params=params,
                                result_sort=None, precondition=pre,
                                semantics=write_quiet_sem, mutator=True,
                                base_name="write"),
    }
    spec = DataStructureSpec(
        name="Cell", state_fields=fields, principal_field=None,
        operations=operations, initial_state=Record(value="init"),
        invariant=lambda state: True,
        states=lambda scope: iter([Record(value=v)
                                   for v in scope.objects]),
        arguments=lambda op, scope: iter([(v,) for v in scope.objects]))
    registry = Registry()
    registry.register_spec("Cell", spec, implementation=CellImpl)
    return registry


def test_executor_dispatches_custom_discard_variant_via_base_name():
    """The bug this PR fixes: the executor used to resolve concrete
    methods by stripping trailing underscores while ``impls.invoke``
    did its own equivalent — a custom ``writeQuiet`` (base ``write``)
    crashed or diverged.  Routed through the canonical helper it runs,
    logs the raw result, and replays serially."""
    registry = _cell_registry()
    report = SpeculativeExecutor(
        "Cell", "commutativity", registry=registry).run(
            [[("writeQuiet", ("a",)), ("write", ("b",))]])
    assert report.commits == 1
    assert report.final_state == Record(value="b")
    assert report.serializable


def test_transaction_record_logs_base_name():
    """The fixed ``Transaction.record``: undo entries key by the base
    operation so rollback's inverse lookup (Table 5.10) matches."""
    from repro.api import DEFAULT_REGISTRY
    op = DEFAULT_REGISTRY.spec("HashSet").operations["add_"]
    txn = Transaction(0, [("add_", ("a",))])
    txn.record(op, ("a",), True, None)
    assert txn.next_op == 1
    assert txn.results == [None]
    [entry] = txn.undo_log
    assert entry.op_name == "add"        # base name, not "add_"
    assert entry.result is True          # raw result, not the None


def test_rollback_of_discard_variants_after_record():
    """End to end: a discard-variant mutation recorded through the
    unified path must roll back exactly (the executor crash scenario
    the divergent inline logging used to risk)."""
    programs = [
        [("add_", ("x",)), ("remove_", ("x",)), ("add", ("y",))],
        [("contains", ("x",)), ("add_", ("x",))],
    ]
    for seed in range(5):
        report = SpeculativeExecutor("HashSet", "read-write",
                                     seed=seed).run(programs)
        assert report.commits == 2
        assert report.serializable


# -- partial condition vocabulary (EvalError -> conservative conflict) ---------

def test_unevaluable_condition_reports_conflict_instead_of_raising():
    """An ArrayList between condition may index the logged operation's
    older snapshot with the incoming operation's argument, which is only
    in-range against the current state.  The gatekeeper must treat the
    unevaluable condition as a conflict, never crash."""
    gk = Gatekeeper("ArrayList")
    before = Record(elems=("v0",), size=1)
    current = Record(elems=("v0", "v1", "v2", "v3", "v4"), size=5)
    from repro.runtime import LoggedOperation
    gk.record(LoggedOperation(txn_id=1, op_name="lastIndexOf",
                              args=("v0",), result=0, before=before,
                              after=before))
    assert gk.admits(2, "remove_at", (3,), current) is False
    assert gk.conflicts == 1


@pytest.mark.parametrize("profile", ("read-heavy", "mixed", "write-heavy"))
def test_generated_arraylist_workloads_never_crash_admission(profile):
    """Regression: generated ArrayList workloads used to crash the
    executor with an uncaught EvalError from condition evaluation on
    ~40% of mixed-profile seeds (e.g. write-heavy seed 2, 10x8)."""
    from repro.api import Session
    session = Session()
    for seed in range(6):
        report = session.run_workload(
            "ArrayList", profile, transactions=6, ops_per_transaction=6,
            key_space=8, seed=seed)
        assert report.commits == 6
        assert report.serializable, (profile, seed, report.summary())


def test_review_repro_arraylist_write_heavy_seed2():
    from repro.api import Session
    report = Session().run_workload(
        "ArrayList", "write-heavy", transactions=10,
        ops_per_transaction=8, seed=2)
    assert report.commits == 10
    assert report.serializable


# -- executor parameter validation ---------------------------------------------

def test_invalid_workers_rejected():
    with pytest.raises(ValueError):
        _executor(workers=0)
    with pytest.raises(ValueError):
        _executor(batch=0)


# -- multi-worker serializability ----------------------------------------------

_ops = st.sampled_from([
    ("add", ("a",)), ("add", ("b",)), ("remove", ("a",)),
    ("contains", ("b",)), ("size", ()), ("add_", ("c",)),
    ("remove_", ("b",)),
])
_programs = st.lists(st.lists(_ops, min_size=1, max_size=3),
                     min_size=2, max_size=4)


@settings(max_examples=15, deadline=None)
@given(_programs, st.integers(0, 100), st.integers(2, 4))
def test_threaded_serializability_property(programs, seed, workers):
    """Whatever the thread interleaving, the committed execution equals
    its serial replay in commit order."""
    report = SpeculativeExecutor("HashSet", "commutativity", seed=seed,
                                 workers=workers, max_rounds=100_000) \
        .run(programs)
    assert report.commits == len(programs)
    assert report.serializable


@settings(max_examples=15, deadline=None)
@given(_programs, st.integers(0, 100), st.integers(2, 4),
       st.sampled_from((2, 4, 8)))
def test_threaded_sharded_serializability_property(programs, seed,
                                                   workers, shards):
    """The fine-grained sharded mode: per-shard lock acquisition in
    ascending order, admission only against interacting regions — every
    thread interleaving must still equal its serial replay."""
    report = SpeculativeExecutor("HashSet", "commutativity", seed=seed,
                                 workers=workers, shards=shards,
                                 max_rounds=100_000).run(programs)
    assert report.commits == len(programs)
    assert report.serializable


@settings(max_examples=10, deadline=None)
@given(_programs, st.integers(0, 100))
def test_threaded_sharded_block_mode_property(programs, seed):
    report = SpeculativeExecutor("HashSet", "commutativity", seed=seed,
                                 workers=3, shards=4,
                                 conflict_mode="block",
                                 max_rounds=100_000).run(programs)
    assert report.commits == len(programs)
    assert report.serializable


def test_setup_program_prepopulates_and_replays():
    """A load-phase program seeds the structure outside any transaction
    and is counted in neither operations nor the serial replay's
    transaction order — but both executions start from it."""
    setup = [("add", ("warm",))]
    programs = [[("contains", ("warm",)), ("add", ("cold",))]]
    report = SpeculativeExecutor("HashSet").run(programs, setup=setup)
    assert report.operations == 2  # the setup op is not counted
    assert report.serializable
    assert report.final_state["contents"] == frozenset({"warm", "cold"})


@settings(max_examples=10, deadline=None)
@given(_programs, st.integers(0, 100))
def test_threaded_block_mode_property(programs, seed):
    report = SpeculativeExecutor("HashSet", "read-write", seed=seed,
                                 workers=3, conflict_mode="block",
                                 max_rounds=100_000).run(programs)
    assert report.commits == len(programs)
    assert report.serializable


def test_serial_mode_still_deterministic():
    """workers=1 must stay byte-for-byte reproducible from the seed."""
    programs = [[("add", ("a",)), ("remove", ("b",))],
                [("add", ("b",)), ("contains", ("a",))],
                [("size", ()), ("add", ("a",))]]
    reports = [SpeculativeExecutor("HashSet", "read-write",
                                   seed=9).run(programs)
               for _ in range(3)]
    assert len({r.aborts for r in reports}) == 1
    assert len({tuple(r.commit_order) for r in reports}) == 1
    assert len({r.operations for r in reports}) == 1
