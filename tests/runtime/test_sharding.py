"""The sharded conflict manager: routing soundness, flat-vs-sharded
decision equivalence (the tentpole invariant), per-shard counters, and
log maintenance under multi-region storage."""

import pytest

from repro.api import Registry, Session
from repro.eval import Record
from repro.runtime import (Gatekeeper, LoggedOperation,
                           ShardedGatekeeper, SpeculativeExecutor,
                           conflict_manager, stable_hash)
from repro.runtime.sharding import (ARRAYLIST_BAND_WIDTH,
                                    arraylist_router, keyed_router,
                                    normalize_route,
                                    single_region_router)
from repro.workloads import WorkloadGenerator, WorkloadSpec

BUILTINS = ("ListSet", "HashSet", "AssociationList", "HashTable",
            "ArrayList", "Accumulator")


# -- routers -------------------------------------------------------------------

def test_stable_hash_is_process_stable():
    # crc32 of the repr: fixed values, unlike randomized str hashing.
    assert stable_hash("k0") == stable_hash("k0")
    assert stable_hash(("a", 1)) == stable_hash(("a", 1))


def test_keyed_router_routes_by_first_argument():
    a = keyed_router("add", ("k1",), 4)
    b = keyed_router("remove_", ("k1",), 4)
    assert a == b and len(a) == 1 and 0 <= a[0] < 4
    assert keyed_router("size", (), 4) is None  # interacts with all


def test_arraylist_router_banding():
    shards = 4
    wide = ARRAYLIST_BAND_WIDTH * shards
    # Value searches and size scan the whole list.
    assert arraylist_router("indexOf", ("v0",), shards) is None
    assert arraylist_router("size", (), shards) is None
    # get/set touch exactly their index's band.
    assert arraylist_router("get", (0,), shards) == (0,)
    assert arraylist_router("set", (wide,), shards) == (shards - 1,)
    assert arraylist_router("set_", (0, "v"), shards) == (0,)
    # Shifting operations cover their band and everything above.
    assert arraylist_router("add_at", (0, "v"), shards) \
        == tuple(range(shards))
    high = arraylist_router("remove_at_", (wide,), shards)
    assert high == (shards - 1,)


def test_arraylist_router_shift_overlaps_higher_indices():
    """The soundness invariant for banding: a shift at index i shares a
    shard with every (non-global) operation at index j >= i."""
    shards = 4
    for i in range(0, 24, 3):
        shift = set(arraylist_router("add_at", (i, "v"), shards))
        for j in range(i, 32, 5):
            touch = set(arraylist_router("get", (j,), shards))
            assert shift & touch, (i, j)


def test_normalize_route():
    assert normalize_route(None, 3) == (0, 1, 2)
    assert normalize_route((2, 0, 2), 3) == (0, 2)
    assert normalize_route((5,), 3) == (2,)  # clamped into range
    assert single_region_router("anything", ("x",), 8) == (0,)


def test_builtin_families_have_registered_routers():
    from repro.api import DEFAULT_REGISTRY
    for name in BUILTINS:
        assert DEFAULT_REGISTRY.has_shard_router(name), name


# -- manager construction ------------------------------------------------------

def test_conflict_manager_factory():
    flat = conflict_manager("HashSet", shards=1)
    assert isinstance(flat, Gatekeeper)
    sharded = conflict_manager("HashSet", shards=4)
    assert isinstance(sharded, ShardedGatekeeper)
    assert sharded.num_shards == 4
    with pytest.raises(ValueError):
        conflict_manager("HashSet", shards=0)
    with pytest.raises(ValueError):  # power-of-two counts only
        conflict_manager("HashSet", shards=3)
    with pytest.raises(ValueError):
        SpeculativeExecutor("HashSet", shards=6)


def test_sharded_routing_replicates_global_ops():
    manager = ShardedGatekeeper("HashSet", shards=4)
    # A keyed op stores, scans, and locks exactly its own shard — two
    # ops on distinct keys share no lock at all; a globally-interacting
    # op (size) is replicated into every shard so each routed scan is
    # self-contained.
    store = manager.store_regions("add", ("k1",))
    assert len(store) == 1 and store[0] < 4
    assert manager.scan_regions("add", ("k1",)) == store
    assert manager.store_regions("size", ()) == tuple(range(4))
    assert manager.scan_regions("size", ()) == tuple(range(4))


def test_non_commutativity_policies_collapse_to_one_region():
    for policy in ("read-write", "mutex"):
        manager = ShardedGatekeeper("HashSet", policy, shards=4)
        assert manager.store_regions("add", ("k1",)) == (0,)


def test_custom_structure_without_router_is_single_region():
    registry = Registry()

    class Impl:
        def __init__(self):
            self.v = None

    from repro.specs.interface import (DataStructureSpec, Operation,
                                       Param, parse_pre)
    from repro.logic.sorts import Sort
    fields = {"value": Sort.OBJ}
    params = (Param("v", Sort.OBJ),)
    pre = parse_pre("v ~= null", fields, params, {}, None)
    ops = {"write": Operation(
        name="write", params=params, result_sort=None,
        precondition=pre,
        semantics=lambda state, args: (Record(value=args[0]), None),
        mutator=True)}
    spec = DataStructureSpec(
        name="Cell", state_fields=fields, principal_field=None,
        operations=ops, initial_state=Record(value=None),
        invariant=lambda state: True,
        states=lambda scope: iter([Record(value=None)]),
        arguments=lambda op, scope: iter([("a",)]))
    registry.register_spec("Cell", spec, implementation=Impl)
    manager = ShardedGatekeeper("Cell", registry=registry, shards=4)
    assert manager.store_regions("write", ("a",)) == (0,)
    assert manager.scan_regions("write", ("a",)) == (0,)


# -- counters ------------------------------------------------------------------

def _entry(txn_id, op, args, result, state):
    return LoggedOperation(txn_id=txn_id, op_name=op, args=args,
                           result=result, before=state, after=state)


def test_per_shard_counters_sum_to_totals():
    manager = ShardedGatekeeper("HashSet", shards=4)
    s0 = Record(contents=frozenset(), size=0)
    for i, key in enumerate(("a", "b", "c", "d")):
        manager.record(_entry(1, "add", (key,), True, s0))
    manager.admits(2, "size", (), s0)       # scans everything
    manager.admits(2, "add", ("a",), s0)    # scans one shard + global
    stats = manager.shard_stats()
    assert len(stats) == 4
    assert sum(s["checks"] for s in stats) == manager.checks
    assert sum(s["conflicts"] for s in stats) == manager.conflicts


def test_multi_region_entries_are_checked_once():
    """A globally-stored entry (size) must contribute exactly one check
    per admission, not one per scanned region — the aggregation-safety
    satellite: totals never double- or under-count."""
    flat = Gatekeeper("HashSet")
    sharded = ShardedGatekeeper("HashSet", shards=4)
    s0 = Record(contents=frozenset({"a"}), size=1)
    for manager in (flat, sharded):
        manager.record(_entry(1, "size", (), 1, s0))
        assert manager.admits(2, "contains", ("a",), s0)
    assert flat.checks == sharded.checks == 1


def test_release_clears_all_regions():
    manager = ShardedGatekeeper("HashSet", shards=4)
    s0 = Record(contents=frozenset(), size=0)
    manager.record(_entry(1, "size", (), 0, s0))
    manager.record(_entry(1, "add", ("a",), True, s0))
    assert len(manager.outstanding(1)) == 2
    assert manager.touched(1)
    manager.release(1)
    assert manager.outstanding() == []
    assert manager.touched(1) == ()


# -- the tentpole invariant: sharded decisions == flat decisions ---------------

def _trace(report):
    return (report.commit_order, report.aborts, report.operations,
            report.conflicts, report.txn_aborts, report.final_state)


@pytest.mark.parametrize("name", BUILTINS)
@pytest.mark.parametrize("profile", ("mixed", "write-heavy"))
def test_sharded_equals_flat_at_one_worker(name, profile):
    """At workers=1 the scheduler is deterministic, so identical
    admission decisions mean byte-identical traces: the sharded manager
    must reproduce the flat log exactly (it only ever skips pairs that
    unconditionally commute)."""
    generator = WorkloadGenerator()
    for seed in (1, 7, 23):
        workload = WorkloadSpec(profile=profile, distribution="hot-key",
                                transactions=6, ops_per_transaction=5,
                                key_space=8, value_space=3, seed=seed)
        programs = generator.generate(name, workload)
        traces = []
        for shards in (1, 2, 4):
            executor = SpeculativeExecutor(
                name, "commutativity", seed=seed, shards=shards,
                max_rounds=200_000)
            traces.append(_trace(executor.run(programs)))
        assert traces[0] == traces[1] == traces[2], (name, seed)


@pytest.mark.parametrize("policy", ("read-write", "mutex"))
def test_sharded_equals_flat_under_pessimistic_policies(policy):
    generator = WorkloadGenerator()
    workload = WorkloadSpec(profile="mixed", transactions=5,
                            ops_per_transaction=4, key_space=6, seed=11)
    programs = generator.generate("HashSet", workload)
    flat = SpeculativeExecutor("HashSet", policy, seed=11,
                               max_rounds=200_000).run(programs)
    sharded = SpeculativeExecutor("HashSet", policy, seed=11, shards=4,
                                  max_rounds=200_000).run(programs)
    assert _trace(flat) == _trace(sharded)


def _register_registry():
    """A fully-registered custom structure (spec + conditions + inverse
    + implementation) with NO shard router: a shared overwrite register
    whose writes conflict unless value and overwritten value agree."""
    from repro.commutativity import CommutativityCondition, Kind
    from repro.inverses.catalog import Arg, Guard, InverseCall, InverseSpec
    from repro.logic.sorts import Sort
    from repro.specs.interface import (DataStructureSpec, Operation,
                                       Param, parse_pre)

    class RegisterImpl:
        def __init__(self):
            self.value = "init"

        def write(self, v):
            old = self.value
            self.value = v
            return old

        def read(self):
            return self.value

        def abstract_state(self):
            return Record(value=self.value)

    fields = {"value": Sort.OBJ}
    params = (Param("v", Sort.OBJ),)
    operations = {
        "write": Operation(
            name="write", params=params, result_sort=Sort.OBJ,
            precondition=parse_pre("v ~= null", fields, params, {}, None),
            semantics=lambda s, a: (Record(value=a[0]), s["value"]),
            mutator=True),
        "read": Operation(
            name="read", params=(), result_sort=Sort.OBJ,
            precondition=parse_pre("true", fields, (), {}, None),
            semantics=lambda s, a: (s, s["value"]), mutator=False),
    }
    spec = DataStructureSpec(
        name="Register", state_fields=fields, principal_field=None,
        operations=operations, initial_state=Record(value="init"),
        invariant=lambda state: True,
        states=lambda scope: iter([Record(value=v)
                                   for v in scope.objects]),
        arguments=lambda op, scope: iter(
            [(v,) for v in scope.objects] if op.params else [()]))
    registry = Registry()
    registry.register_spec("Register", spec,
                           implementation=RegisterImpl)
    texts = {("write", "write"): "v1 = v2 & s1.value = v1",
             ("write", "read"): "s1.value = v1",
             ("read", "write"): "s1.value = v2",
             ("read", "read"): "true"}
    registry.register_conditions("Register", [
        CommutativityCondition(family="Register", m1=m1, m2=m2,
                               kind=Kind.BETWEEN, text=text, spec=spec)
        for (m1, m2), text in texts.items()])
    registry.register_inverses("Register", [InverseSpec(
        family="Register", op="write", guard=Guard.NONE,
        then=(InverseCall("write", (Arg.result(),)),))])
    return registry


def test_sharded_equals_flat_for_custom_structure():
    """A registered custom structure with no shard router falls back to
    a single region: sharded execution is the flat log by construction."""
    registry = _register_registry()
    programs = [[("write", ("a",)), ("read", ())],
                [("write", ("b",)), ("write", ("a",))],
                [("read", ()), ("write", ("c",))]]
    traces = []
    for shards in (1, 4):
        for seed in (0, 5, 9):
            executor = SpeculativeExecutor(
                "Register", "commutativity", seed=seed, shards=shards,
                registry=registry, max_rounds=100_000)
            traces.append((seed, _trace(executor.run(programs))))
    assert traces[:3] == traces[3:]
    # The workload genuinely conflicts somewhere, or the test is vacuous.
    assert any(trace[1][1] > 0 for trace in traces)


def test_custom_shard_router_hook():
    """A custom structure can register its own router; the registry hook
    feeds straight into the sharded gatekeeper."""
    from tests.runtime.test_executor_edges import _cell_registry
    registry = _cell_registry()
    calls = []

    def router(op_name, args, num_shards):
        calls.append(op_name)
        return (stable_hash(args[0]) % num_shards,) if args else None

    registry.register_shard_router("Cell", router)
    assert registry.shard_router("Cell") is router
    manager = ShardedGatekeeper("Cell", registry=registry, shards=4)
    expected = (stable_hash("x") % 4,)
    assert manager.store_regions("write", ("x",)) == expected
    assert calls


def test_session_run_workload_shards_and_adaptive():
    report = Session().run_workload(
        "HashSet", "write-heavy", transactions=5, ops_per_transaction=4,
        key_space=6, seed=3, shards=4, adaptive="hybrid")
    assert report.shards == 4
    assert report.adaptive == "hybrid"
    assert report.commits == 5
    assert report.serializable
    assert len(report.shard_stats) == 4
