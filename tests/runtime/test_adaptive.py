"""Contention-adaptive policies: backoff deferral, wait-die ordering,
the hybrid per-shard fallback, and their executor integration."""

import pytest

from repro.runtime import (BackoffController, HybridController,
                           SpeculativeExecutor, Transaction,
                           WaitDieController, make_controller)
from repro.workloads import (BENCH_WORKLOADS, ThroughputHarness,
                             WorkloadGenerator)

HOTKEY = next(w for w in BENCH_WORKLOADS
              if w.label == "write-heavy-hotkey")


# -- controller units ----------------------------------------------------------

def test_make_controller_names():
    assert make_controller(None) is None
    assert make_controller("none") is None
    assert isinstance(make_controller("backoff"), BackoffController)
    assert isinstance(make_controller("wait-die"), WaitDieController)
    assert isinstance(make_controller("hybrid"), HybridController)
    with pytest.raises(ValueError):
        make_controller("optimistic-unicorn")


def test_executor_rejects_unknown_adaptive():
    with pytest.raises(ValueError):
        SpeculativeExecutor("HashSet", adaptive="optimistic-unicorn")


def test_backoff_defers_exponentially():
    controller = BackoffController(seed=1)
    txn = Transaction(0, [("add", ("a",))])
    assert not controller.deferred(txn, 0)
    txn.aborts = 1
    controller.on_abort(txn, now=10)
    first = txn.backoff_until - 10
    assert controller.deferred(txn, 10)
    assert not controller.deferred(txn, txn.backoff_until + 1)
    txn.aborts = 4
    controller.on_abort(txn, now=10)
    assert txn.backoff_until - 10 > first  # delay grows with aborts


def test_wait_die_ordering():
    controller = WaitDieController()
    older = Transaction(0, [])
    younger = Transaction(5, [])
    # Older requester waits for a younger holder; younger dies.
    assert controller.on_conflict(older, 5, (0,), "abort") == "block"
    assert controller.on_conflict(younger, 0, (0,), "abort") == "abort"
    # No identified holder: fall through to the conflict mode.
    assert controller.on_conflict(older, None, (0,), "abort") == "abort"


def test_hybrid_trips_per_shard():
    controller = HybridController(window=4, threshold=0.5)
    txn = Transaction(1, [])
    for _ in range(4):
        controller.on_outcome((0,), conflicted=True)
        controller.on_outcome((1,), conflicted=False)
    assert controller.tripped(0)
    assert not controller.tripped(1)
    assert controller.on_conflict(txn, 2, (0,), "abort") == "block"
    assert controller.on_conflict(txn, 2, (1,), "abort") == "abort"
    # The window slides: successes cool a tripped shard back down.
    for _ in range(4):
        controller.on_outcome((0,), conflicted=False)
    assert not controller.tripped(0)


def test_hybrid_validation():
    with pytest.raises(ValueError):
        HybridController(window=1)
    with pytest.raises(ValueError):
        HybridController(threshold=0.0)


# -- executor integration ------------------------------------------------------

@pytest.mark.parametrize("adaptive", ("backoff", "wait-die", "hybrid"))
def test_adaptive_serial_commits_everything(adaptive):
    harness = ThroughputHarness(max_rounds=500_000)
    run = harness.run_one("HashSet", HOTKEY, policy="commutativity",
                          workers=1, adaptive=adaptive)
    assert run.commits == HOTKEY.transactions
    assert run.serializable
    assert run.report.adaptive == adaptive


@pytest.mark.parametrize("adaptive", ("backoff", "wait-die", "hybrid"))
def test_adaptive_serial_is_deterministic(adaptive):
    """workers=1 stays reproducible from the seed with every controller
    (backoff jitter comes from a seeded rng, not the clock)."""
    programs = WorkloadGenerator().generate("HashSet", HOTKEY)
    traces = []
    for _ in range(2):
        report = SpeculativeExecutor(
            "HashSet", "commutativity", seed=HOTKEY.seed,
            adaptive=adaptive, max_rounds=500_000).run(programs)
        traces.append((report.commit_order, report.aborts,
                       report.operations, report.txn_aborts))
    assert traces[0] == traces[1]


@pytest.mark.parametrize("name", ("HashSet", "HashTable", "ArrayList",
                                  "Accumulator"))
def test_hybrid_strictly_reduces_aborts_on_hotkey(name):
    """The acceptance-criterion shape: on the hot-key write-heavy
    workload the hybrid policy (speculate, then block per tripped
    shard) must abort strictly less than plain commutativity."""
    harness = ThroughputHarness(max_rounds=500_000)
    plain = harness.run_one(name, HOTKEY, policy="commutativity",
                            workers=1)
    hybrid = harness.run_one(name, HOTKEY, policy="commutativity",
                             workers=1, adaptive="hybrid")
    assert plain.serializable and hybrid.serializable
    assert plain.aborts > 0
    assert hybrid.aborts < plain.aborts


def test_adaptive_mixed_block_and_abort_responses_converge():
    """Regression: adaptive modes mix block and abort responses, so an
    abort must wake blocked waiters — otherwise the abort churn keeps
    the scheduler busy, the deadlock breaker never fires, and blocked
    transactions starve (HashTable/write-heavy-hotkey livelocked at
    500k rounds)."""
    harness = ThroughputHarness(max_rounds=500_000)
    for name in ("HashTable", "AssociationList", "ListSet"):
        run = harness.run_one(name, HOTKEY, policy="commutativity",
                              workers=1, shards=1, adaptive="hybrid")
        assert run.commits == HOTKEY.transactions, name
        assert run.serializable


@pytest.mark.parametrize("adaptive", ("backoff", "wait-die", "hybrid"))
def test_adaptive_threaded_sharded_serializable(adaptive):
    harness = ThroughputHarness(max_rounds=500_000)
    run = harness.run_one("HashSet", HOTKEY, policy="commutativity",
                          workers=3, shards=4, adaptive=adaptive)
    assert run.commits == HOTKEY.transactions
    assert run.serializable
