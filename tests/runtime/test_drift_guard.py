"""Drift-guard conservative paths (previously only the happy path was
property-tested): the EvalError fallback, custom structures without
routers, global-region operations — and the undo-commutation guard that
keeps inverse rollback from clobbering admitted writes."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "api"))

from register_fixture import make_register_registry  # noqa: E402

from repro.eval import Record  # noqa: E402
from repro.eval.values import FMap  # noqa: E402
from repro.runtime import Gatekeeper, LoggedOperation  # noqa: E402
from repro.runtime import SpeculativeExecutor  # noqa: E402


def _set_state(*elems):
    return Record(contents=frozenset(elems), size=len(elems))


def _seq_state(*elems):
    return Record(elems=tuple(elems))


def _map_state(**kv):
    return Record(contents=FMap(kv), size=len(kv))


# -- EvalError fallback -------------------------------------------------------

def test_unevaluable_condition_falls_back_to_the_oracle():
    """A condition whose vocabulary indexes outside the logged snapshot
    cannot certify commutativity: the check lands on the router oracle
    (same band here, hence a conservative conflict), never on an
    unsound admission."""
    gk = Gatekeeper("ArrayList")
    state = _seq_state("a")
    gk.record(LoggedOperation(txn_id=1, op_name="get", args=(0,),
                              result="a", before=state, after=state))
    # No drift (current == after), but ``at(upd(s1, 1, v), 0)`` indexes
    # a one-element snapshot at 1: EvalError inside the evaluation.
    assert not gk.admits(2, "set", (1, "x"), state)
    assert gk.fallbacks == 1 and gk.fallback_admits == 0
    assert gk.drift_checks == 0  # this was the EvalError path, not drift


def test_unevaluable_condition_can_still_admit_disjoint_regions():
    gk = Gatekeeper("ArrayList")
    state = _seq_state(*["a"] * 9)
    gk.record(LoggedOperation(txn_id=1, op_name="get", args=(0,),
                              result="a", before=_seq_state("a"),
                              after=_seq_state("a")))
    # Drifted AND the incoming index lives in a higher band: the oracle
    # admits what the condition cannot evaluate.
    assert gk.admits(2, "set", (8, "x"), state)
    assert gk.fallbacks == 1 and gk.fallback_admits == 1


# -- custom structures without routers ---------------------------------------

def test_custom_structure_without_router_conflicts_under_drift():
    """Register has state-referencing conditions and no router: once
    the verified environment is gone there is no oracle to consult, so
    every fragile pair is a conservative conflict."""
    registry = make_register_registry()
    gk = Gatekeeper("Register", registry=registry)
    state = Record(value="a")
    # A no-op write: the write;read condition (s1.value = v1) holds.
    gk.record(LoggedOperation(txn_id=1, op_name="write", args=("a",),
                              result="a", before=state, after=state))
    # Same environment: the condition evaluates and admits.
    assert gk.admits(2, "read", (), state)
    # Drifted: refused outright, no router to fall back to.
    assert not gk.admits(2, "read", (), Record(value="z"))
    assert gk.fallbacks == 1 and gk.fallback_admits == 0


# -- global-region operations -------------------------------------------------

def test_global_region_op_is_refused_under_drift():
    """``size`` interacts with every region, so the oracle can never
    declare it disjoint: a drifted size-pair is always a conflict."""
    gk = Gatekeeper("HashSet")
    before = _set_state()
    after = _set_state("a")
    drifted = _set_state("a", "b")
    gk.record(LoggedOperation(txn_id=1, op_name="add_", args=("a",),
                              result=None, before=before, after=after))
    # add_;size between condition is ``v1 : s1``: fragile.  Under drift
    # the oracle cannot help — size routes to every region.
    assert not gk.admits(2, "size", (), drifted)
    assert gk.drift_checks == 1
    assert gk.fallbacks == 1 and gk.fallback_admits == 0


def test_global_region_logged_op_blocks_drifted_incomers():
    gk = Gatekeeper("HashSet")
    state = _set_state("a")
    gk.record(LoggedOperation(txn_id=1, op_name="size", args=(),
                              result=1, before=state, after=state))
    # size;add_ between condition is ``v2 : s1``: fragile, and the
    # logged size interacts with everything.
    assert not gk.admits(2, "add_", ("b",), _set_state("a", "c"))
    assert gk.fallbacks == 1 and gk.fallback_admits == 0


# -- the undo-commutation guard ----------------------------------------------

def test_undo_guard_refuses_clobberable_same_value_write():
    """The lost-update shape: ``T1: put_(k, x)`` over an older value,
    then ``T2: put_(k, x)`` — the pair commutes (same value), but if T1
    aborts its rollback rewrites ``k`` to the older value *under* T2's
    write.  The guard refuses the admission."""
    gk = Gatekeeper("HashTable")
    before = _map_state(k="y")
    after = _map_state(k="x")
    gk.record(LoggedOperation(txn_id=1, op_name="put_", args=("k", "x"),
                              result=None, before=before, after=after))
    assert not gk.admits(2, "put_", ("k", "x"), after)
    assert gk.undo_refusals == 1


def test_undo_guard_skips_effect_free_executions():
    """A no-op write has a no-op undo (Property 3): nothing to guard."""
    gk = Gatekeeper("HashTable")
    state = _map_state(k="x")
    gk.record(LoggedOperation(txn_id=1, op_name="put_", args=("k", "x"),
                              result=None, before=state, after=state))
    assert gk.admits(2, "put_", ("k", "x"), state)
    assert gk.undo_refusals == 0


def test_undo_guard_refuses_add_discard_shadowing():
    """``add_`` of a fresh element undoes with ``remove``; a concurrent
    ``add_`` of the same element would be silently deleted by that
    rollback."""
    gk = Gatekeeper("HashSet")
    before = _set_state()
    after = _set_state("a")
    gk.record(LoggedOperation(txn_id=1, op_name="add_", args=("a",),
                              result=None, before=before, after=after))
    assert not gk.admits(2, "add_", ("a",), after)
    assert gk.undo_refusals == 1
    # Disjoint elements never reach the guard (router short-circuit).
    assert gk.admits(2, "add_", ("b",), after)
    assert gk.undo_refusals == 1


def test_executor_survives_abort_under_admitted_same_value_write():
    """End-to-end: the abort-rollback interleavings stay identical to
    serial replay with the guard in place."""
    programs = [
        [("put_", ("k", "x"))],
        [("put_", ("k", "x")), ("size", ()), ("remove", ("j",))],
        [("put", ("k", "y")), ("put", ("k", "y"))],
    ]
    for seed in range(25):
        report = SpeculativeExecutor("HashTable", "commutativity",
                                     seed=seed).run(programs)
        assert report.serializable, (seed, report.summary())
