"""Proved-tier admissions at run time: the gatekeeper counts them
separately, never decides differently on them, and flat and sharded
managers agree — with every execution identical to its serial replay."""

import pytest

from repro.api import Session
from repro.eval import Scope
from repro.workloads import ThroughputHarness, WorkloadSpec

#: The acceptance workload shape (see tests/stability): write-heavy
#: hot-key traffic over a preloaded structure.
GATE = WorkloadSpec(name="proved-gate", profile="write-heavy",
                    distribution="hot-key", transactions=12,
                    ops_per_transaction=6, key_space=24, value_space=3,
                    preload=20, seed=9)

#: Set/Map compile in well under a second with the prover; ArrayList's
#: partition enumeration (~tens of seconds) stays out of tier-1 and is
#: covered per-pair in test_native.py.
FAST = ("HashSet", "HashTable")


@pytest.fixture(scope="module")
def proved_session() -> Session:
    session = Session(scope=Scope(), cache=False)
    session.compile_stable(names=FAST, prover=True)
    return session


@pytest.mark.parametrize("structure", FAST)
def test_proved_hits_are_counted_on_their_own_tier(proved_session,
                                                   structure):
    harness = ThroughputHarness(registry=proved_session.registry)
    run = harness.run_one(structure, GATE, workers=1, shards=1,
                          stable=True)
    assert run.serializable, run.summary()
    # Every Set/Map weakening promotes to the proved tier, so all
    # semantic drift admissions land on proved_hits.
    assert run.proved_hits > 0
    assert run.stable_hits == 0


@pytest.mark.parametrize("structure", FAST)
def test_tier_never_changes_the_decision(proved_session, structure):
    # The same registry, with the same conditions demoted to the
    # weakened tier, must produce the identical execution — the tier
    # is decision-visible (counters) but never decision-changing.
    from dataclasses import replace
    registry = proved_session.registry
    proved_conds = registry.stable_conditions(structure)
    harness = ThroughputHarness(registry=registry)
    proved = harness.run_one(structure, GATE, workers=1, shards=1,
                             stable=True)
    registry.register_stable_conditions(
        structure, tuple(replace(c, tier="weakened")
                         for c in proved_conds), replace=True)
    try:
        demoted = harness.run_one(structure, GATE, workers=1, shards=1,
                                  stable=True)
    finally:
        registry.register_stable_conditions(structure, proved_conds,
                                            replace=True)
    assert (demoted.commits, demoted.aborts,
            demoted.report.commit_order) \
        == (proved.commits, proved.aborts, proved.report.commit_order)
    assert demoted.stable_hits == proved.proved_hits
    assert demoted.proved_hits == 0


@pytest.mark.parametrize("shards", (2, 4))
def test_flat_and_sharded_proved_decisions_identical(proved_session,
                                                     shards):
    harness = ThroughputHarness(registry=proved_session.registry)
    flat = harness.run_one("HashTable", GATE, workers=1, shards=1,
                           stable=True)
    sharded = harness.run_one("HashTable", GATE, workers=1,
                              shards=shards, stable=True)
    assert flat.serializable and sharded.serializable
    assert (flat.commits, flat.aborts, flat.report.commit_order) \
        == (sharded.commits, sharded.aborts,
            sharded.report.commit_order)


def test_shard_stats_surface_proved_hits(proved_session):
    from repro.runtime import conflict_manager
    manager = conflict_manager("HashTable", shards=2,
                               registry=proved_session.registry,
                               stable=True)
    for stats in manager.shard_stats():
        assert "proved_hits" in stats
