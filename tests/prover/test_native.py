"""The native backend: unbounded proofs, EUF-certified refutations,
and the bounded-length ArrayList regime."""

from conftest import fragile_condition

from repro.prover import prove_pair
from repro.prover.obligations import (REGIME_BOUNDED_LENGTH,
                                      REGIME_UNBOUNDED)
from repro.stability.compiler import candidate_texts


def _prove(registry, scope, name, m1, m2, texts=None):
    cond = fragile_condition(registry, name, m1, m2)
    if texts is None:
        texts = candidate_texts(cond, True)
    return prove_pair(registry.spec(name), cond, texts, scope)


def _by_text(proof):
    return {r.candidate: r for r in proof.results}


# -- Set: unbounded proofs and refutations ------------------------------------

def test_set_state_free_candidate_proved_unboundedly(registry, scope):
    proof = _prove(registry, scope, "HashSet", "add_", "contains")
    result = _by_text(proof)["v1 ~= v2"]
    assert result.status == "proved"
    assert result.regime == REGIME_UNBOUNDED
    assert result.admitted > 0
    assert result.countermodel is None


def test_set_reanchored_candidate_refuted_with_countermodel(registry,
                                                            scope):
    # The s1 -> s2 re-anchoring of add_;contains is value coincidence
    # all over again: under drift the set may contain v1 without the
    # logged add_ having been the no-op the original condition
    # certified.  The prover must find a concrete countermodel.
    proof = _prove(registry, scope, "HashSet", "add_", "contains")
    result = _by_text(proof)["v1 ~= v2 | s2.contains(v1) = true"]
    assert result.status == "refuted"
    cm = result.countermodel
    assert cm is not None
    assert cm["family"] == "Set"
    assert cm["candidate"] == "v1 ~= v2 | s2.contains(v1) = true"
    # The countermodel carries the refuting case and its EUF
    # consistency certificate (the semantic bindings really are
    # satisfiable — the refutation is not an artifact of token choice).
    for key in ("root", "drift", "args1", "args2", "euf_classes"):
        assert key in cm


def test_accumulator_obligations_discharge(registry, scope):
    from repro.commutativity.conditions import Kind
    conditions = [c for c in registry.conditions("Accumulator")
                  if c.kind is Kind.BETWEEN and c.drift_fragile]
    for cond in conditions:
        proof = prove_pair(registry.spec("Accumulator"), cond,
                           candidate_texts(cond, True), scope)
        # No Accumulator candidate may be refuted: its between catalog
        # has no fragile pair whose weakening lies (PR 5 ground truth).
        assert all(r.status != "refuted" for r in proof.results), \
            f"{cond.m1};{cond.m2}: {[r.status for r in proof.results]}"


# -- ArrayList: the bounded-length regime -------------------------------------

def test_arraylist_observer_pinned_candidate_proved(registry, scope):
    # The bounded sweep passes ``at(upd(s2.elems, i2, v2), i1) = r1``
    # but refuses to arm it (state-reading); the prover's certificate
    # is exactly what lifts the refusal.
    proof = _prove(registry, scope, "ArrayList", "get", "set")
    result = _by_text(proof)["at(upd(s2.elems, i2, v2), i1) = r1"]
    assert result.status == "proved"
    assert result.regime == REGIME_BOUNDED_LENGTH
    assert result.admitted > 0


def test_arraylist_unsound_candidate_refuted(registry, scope):
    # indexOf;set: ``i2 = r1`` (writing at the observed index) does not
    # commute — the countermodel is a genuinely fragile admission.
    proof = _prove(registry, scope, "ArrayList", "indexOf", "set")
    by_text = _by_text(proof)
    assert by_text["i2 = r1"].status == "refuted"
    assert by_text["i2 = r1"].countermodel is not None
    assert by_text["idx(upd(s2.elems, i2, v2), v1) = r1"].status \
        == "proved"


# -- the clean-admission contract ---------------------------------------------

def test_vacuous_candidate_is_not_proved(registry, scope):
    # A candidate that never admits cleanly certifies nothing: the
    # prover must refuse it rather than report an empty proof.
    proof = _prove(registry, scope, "HashSet", "add_", "contains",
                   texts=["v1 = v2 & v1 ~= v2"])
    (result,) = proof.results
    assert result.status == "unsupported"
    assert "vacuous" in result.reason
