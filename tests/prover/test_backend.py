"""Backend packaging: fingerprints, payload round-trips, proof
merging, and the cache-key sensitivity the satellites demand."""

from conftest import fragile_condition

from repro.engine import TaskPlanner
from repro.engine.fingerprint import (stability_fingerprint,
                                      symbolic_stability_fingerprint)
from repro.eval import Scope
from repro.prover import (discharge_pair, proof_from_payload,
                          proof_payload, prover_fingerprint)
from repro.stability.compiler import candidate_texts, merge_proofs
from repro.stability.quantified import check_pair


def test_prover_fingerprint_shape():
    fp = prover_fingerprint()
    assert fp["backend"] == "native-euf"
    assert isinstance(fp["prover_version"], int)
    assert isinstance(fp["external"]["z3"], bool)


def test_symbolic_fingerprint_extends_bounded(registry):
    from repro.commutativity.conditions import Kind
    conditions = [c for c in registry.conditions("HashSet")
                  if c.kind is Kind.BETWEEN and c.drift_fragile][:2]
    bounded = stability_fingerprint(conditions, True)
    symbolic = symbolic_stability_fingerprint(conditions, True)
    assert "prover" not in bounded
    assert symbolic["prover"] == prover_fingerprint()
    assert {k: v for k, v in symbolic.items() if k != "prover"} \
        == bounded


def test_prover_version_changes_task_key(registry, monkeypatch):
    scope = Scope(objects=("a", "b"))
    planner = TaskPlanner(registry)
    before = [t.key for t in
              planner.plan_symbolic_stability(("HashSet",), scope).tasks]
    monkeypatch.setattr("repro.prover.backend.PROVER_VERSION", 999)
    after = [t.key for t in
             planner.plan_symbolic_stability(("HashSet",), scope).tasks]
    assert before != after


def test_z3_availability_changes_task_key(registry, monkeypatch):
    # Installing z3 must retire cached proofs (their corroboration
    # field changes), never serve stale .repro-cache entries.
    import repro.prover.backend as backend
    scope = Scope(objects=("a", "b"))
    planner = TaskPlanner(registry)
    monkeypatch.setattr(backend, "z3_available", lambda: False)
    without = [t.key for t in
               planner.plan_symbolic_stability(("HashSet",), scope).tasks]
    monkeypatch.setattr(backend, "z3_available", lambda: True)
    with_z3 = [t.key for t in
               planner.plan_symbolic_stability(("HashSet",), scope).tasks]
    assert without != with_z3


def test_bounded_and_symbolic_task_keys_differ(registry):
    scope = Scope(objects=("a", "b"))
    planner = TaskPlanner(registry)
    bounded = {t.key for t in
               planner.plan_stability(("HashSet",), scope).tasks}
    symbolic = {t.key for t in
                planner.plan_symbolic_stability(("HashSet",),
                                                scope).tasks}
    assert not (bounded & symbolic)


def test_proof_payload_round_trip(registry, scope):
    cond = fragile_condition(registry, "HashSet", "add_", "contains")
    proof = discharge_pair(registry.spec("HashSet"), cond,
                           candidate_texts(cond, True), scope)
    rebuilt = proof_from_payload(proof_payload(proof),
                                 elapsed=proof.elapsed)
    assert rebuilt.m1 == proof.m1 and rebuilt.m2 == proof.m2
    assert rebuilt.cases == proof.cases
    assert [(r.candidate, r.status, r.admitted, r.regime, r.reason,
             r.countermodel, r.corroboration) for r in rebuilt.results] \
        == [(r.candidate, r.status, r.admitted, r.regime, r.reason,
             r.countermodel, r.corroboration) for r in proof.results]


# -- merge_proofs: proofs into bounded verdicts -------------------------------

def _merged(registry, scope, name, m1, m2):
    cond = fragile_condition(registry, name, m1, m2)
    spec = registry.spec(name)
    texts = candidate_texts(cond, True)
    pair = check_pair(spec, cond, texts, scope)
    proof = discharge_pair(spec, cond, texts, scope)
    return pair, merge_proofs(pair, proof)


def test_proved_pair_promotes_and_keeps_stable_text(registry, scope):
    pair, merged = _merged(registry, scope, "HashSet", "add_",
                           "contains")
    assert pair.verdict == "weakened"
    assert merged.verdict == "proved"
    # The refuted re-anchoring was never armed; the armed state-free
    # survivor is now proved, so the compiled text is unchanged.
    assert merged.stable_text == pair.stable_text
    by_text = {c.text: c for c in merged.candidates}
    assert by_text["v1 ~= v2"].proved
    assert by_text["v1 ~= v2 | s2.contains(v1) = true"].countermodel \
        is not None


def test_proved_state_reader_is_newly_armed(registry, scope):
    # The acceptance property: the bounded sweep passes the
    # observer-pinned ArrayList candidates but refuses to arm them;
    # the symbolic proof is what finally sets armed=True.
    pair, merged = _merged(registry, scope, "ArrayList", "get", "set")
    text = "at(upd(s2.elems, i2, v2), i1) = r1"
    before = {c.text: c for c in pair.candidates}[text]
    after = {c.text: c for c in merged.candidates}[text]
    assert before.passed and not before.armed
    assert after.armed and after.proved
    assert text in merged.stable_text
    assert merged.verdict == "proved"


def test_unproved_armed_candidate_keeps_weakened_verdict(registry,
                                                         scope):
    cond = fragile_condition(registry, "HashSet", "add_", "contains")
    spec = registry.spec("HashSet")
    texts = candidate_texts(cond, True)
    pair = check_pair(spec, cond, texts, scope)
    from repro.prover.native import PairProof
    empty = PairProof(m1=cond.m1, m2=cond.m2, results=(), cases=0,
                      elapsed=0.0)
    merged = merge_proofs(pair, empty)
    # No proof discharged: armed candidates survive but the pair
    # cannot claim the proved tier.
    assert merged.verdict == "weakened"
    assert merged.stable_text == pair.stable_text
