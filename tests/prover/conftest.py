"""Shared fixtures for the symbolic-prover tests."""

import pytest

from repro.api import Registry
from repro.commutativity.conditions import Kind
from repro.eval import Scope


@pytest.fixture(scope="session")
def registry() -> Registry:
    return Registry.with_builtins()


@pytest.fixture(scope="session")
def scope() -> Scope:
    """The full paper scope: the prover's drift enumeration is symbolic
    over values, so it stays fast even here."""
    return Scope()


def fragile_condition(registry, name, m1, m2):
    """The drift-fragile between condition of one operation pair."""
    return next(c for c in registry.conditions(name)
                if c.kind is Kind.BETWEEN and (c.m1, c.m2) == (m1, m2)
                and c.drift_fragile)
