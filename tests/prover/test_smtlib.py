"""The SMT-LIB2 emitter and the optional z3 adapter.

Emitter-structure tests run everywhere; the round-trip tests are
skip-marked on :func:`repro.prover.z3_available` and exercised by the
CI matrix leg that installs ``z3-solver``.
"""

import pytest

from conftest import fragile_condition

from repro.prover import (check_smtlib, emit_obligation, lower_pair,
                          prove_pair, z3_available)
from repro.stability.compiler import candidate_texts


def _obligation_script(registry, name, m1, m2, text):
    cond = fragile_condition(registry, name, m1, m2)
    spec = registry.spec(name)
    (ob,) = lower_pair(spec, cond, [text])
    return emit_obligation(spec, cond, ob.term)


def test_set_script_structure(registry):
    script = _obligation_script(registry, "HashSet", "add_", "contains",
                                "v1 ~= v2")
    assert script is not None
    assert "(set-logic QF_UFLIA)" in script
    assert "(declare-sort Obj 0)" in script
    assert "(check-sat)" in script
    # The obligation is satisfiability of C(d) and NOT commutes: unsat
    # corroborates the native proof.
    assert "(assert (not " in script


def test_map_script_structure(registry):
    script = _obligation_script(registry, "HashTable", "put_", "get",
                                "k1 ~= k2")
    assert script is not None
    assert "hasd" in script and "bindd" in script


def test_arraylist_is_inexpressible(registry):
    # The emitter fragment covers Set/Map point-update reasoning only;
    # sequence index arithmetic stays with the native backend.
    script = _obligation_script(registry, "ArrayList", "get", "set",
                                "i1 ~= i2")
    assert script is None


def test_check_smtlib_unavailable_degrades(monkeypatch):
    import repro.prover.z3adapter as z3adapter
    monkeypatch.setattr(z3adapter, "_z3_binary", lambda: None)
    monkeypatch.setattr(z3adapter, "_z3_module_present", lambda: False)
    assert z3adapter.check_smtlib("(check-sat)") == "unavailable"


@pytest.mark.skipif(not z3_available(), reason="z3 not installed")
def test_z3_corroborates_proved_set_candidate(registry, scope):
    cond = fragile_condition(registry, "HashSet", "add_", "contains")
    spec = registry.spec("HashSet")
    (ob,) = lower_pair(spec, cond, ["v1 ~= v2"])
    script = emit_obligation(spec, cond, ob.term)
    assert check_smtlib(script) == "unsat"


@pytest.mark.skipif(not z3_available(), reason="z3 not installed")
def test_z3_corroborates_refuted_set_candidate(registry, scope):
    cond = fragile_condition(registry, "HashSet", "add_", "contains")
    spec = registry.spec("HashSet")
    text = "v1 ~= v2 | s2.contains(v1) = true"
    (ob,) = lower_pair(spec, cond, [text])
    script = emit_obligation(spec, cond, ob.term)
    assert check_smtlib(script) == "sat"


@pytest.mark.skipif(not z3_available(), reason="z3 not installed")
def test_z3_agrees_with_native_on_expressible_set_map_pairs(registry,
                                                            scope):
    from repro.commutativity.conditions import Kind
    for name in ("HashSet", "HashTable"):
        spec = registry.spec(name)
        conditions = [c for c in registry.conditions(name)
                      if c.kind is Kind.BETWEEN and c.drift_fragile]
        for cond in conditions:
            texts = candidate_texts(cond, True)
            proof = prove_pair(spec, cond, texts, scope)
            terms = {o.text: o.term
                     for o in lower_pair(spec, cond, texts)}
            for result in proof.results:
                if result.status not in ("proved", "refuted"):
                    continue
                term = terms.get(result.candidate)
                script = (emit_obligation(spec, cond, term)
                          if term is not None else None)
                if script is None:
                    continue
                expected = ("unsat" if result.status == "proved"
                            else "sat")
                assert check_smtlib(script) == expected, \
                    f"{cond.m1};{cond.m2}: {result.candidate}"
