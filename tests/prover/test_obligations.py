"""Lowering: candidate texts -> classified proof obligations."""

from conftest import fragile_condition

from repro.prover import lower_pair
from repro.prover.obligations import (REGIME_BOUNDED_LENGTH,
                                      REGIME_UNBOUNDED, family_regime)


def test_state_free_candidate_is_supported(registry):
    cond = fragile_condition(registry, "HashSet", "add_", "contains")
    spec = registry.spec("HashSet")
    (ob,) = lower_pair(spec, cond, ["v1 ~= v2"])
    assert ob.supported and ob.state_free and not ob.wants_s2
    assert ob.reason is None


def test_s2_reading_candidate_is_supported(registry):
    cond = fragile_condition(registry, "HashSet", "add_", "contains")
    spec = registry.spec("HashSet")
    (ob,) = lower_pair(spec, cond, ["s2.contains(v1) = true"])
    assert ob.supported and ob.wants_s2 and not ob.state_free


def test_s1_reading_candidate_is_unsupported(registry):
    cond = fragile_condition(registry, "HashSet", "add_", "contains")
    spec = registry.spec("HashSet")
    (ob,) = lower_pair(spec, cond, ["s1.contains(v1) = true"])
    assert not ob.supported
    assert "s1" in ob.reason


def test_int_state_observation_unsupported_for_symbolic_family(registry):
    # Set sizes are opaque N + delta symbols: comparing them is not
    # point-wise decidable, so the prover refuses rather than guesses.
    cond = fragile_condition(registry, "HashSet", "add_", "size")
    spec = registry.spec("HashSet")
    obligations = lower_pair(spec, cond, ["s2.size() = 0"])
    assert obligations and not obligations[0].supported
    assert "integer state observation" in obligations[0].reason


def test_malformed_candidates_are_dropped(registry):
    cond = fragile_condition(registry, "HashSet", "add_", "contains")
    spec = registry.spec("HashSet")
    obligations = lower_pair(
        spec, cond, ["v1 ~= v2", "((", "no_such_var = true", "v1 ~= v2"])
    # One survivor: the parse failure and the out-of-vocabulary
    # candidate are silently dropped, the duplicate deduplicated —
    # mirroring the bounded sweep's intake.
    assert [ob.text for ob in obligations] == ["v1 ~= v2"]


def test_family_regimes():
    assert family_regime("Set") == REGIME_UNBOUNDED
    assert family_regime("Map") == REGIME_UNBOUNDED
    assert family_regime("Accumulator") == REGIME_UNBOUNDED
    assert family_regime("ArrayList") == REGIME_BOUNDED_LENGTH
