"""The SYMBOLIC_STABILITY task kind through the engine: execution,
cache persistence, and parent-side proof merging."""

import pytest

from repro.api import Registry
from repro.engine import ResultCache, execute_task, run_stability_compilation
from repro.engine.planner import TaskPlanner
from repro.engine.tasks import SYMBOLIC_STABILITY, VerifyTask
from repro.eval import Scope

SCOPE = Scope()


@pytest.fixture
def registry() -> Registry:
    return Registry.with_builtins()


def test_execute_symbolic_stability_task(registry):
    plan = TaskPlanner(registry).plan_symbolic_stability(("HashSet",),
                                                         SCOPE)
    assert plan.tasks
    task = next(t for t in plan.tasks if t.group == "add_")
    assert task.kind == SYMBOLIC_STABILITY
    assert task.backend == "native"
    assert "prover" in task.label
    outcome = execute_task(task, registry)
    assert len(outcome.results) == len(plan.payloads[task.index])
    for cond, result in zip(plan.payloads[task.index], outcome.results):
        payload = result.payload
        assert payload["m1"] == cond.m1 and payload["m2"] == cond.m2
        assert all(r["status"] in ("proved", "refuted", "unsupported")
                   for r in payload["results"])


def test_execute_rejects_unknown_group(registry):
    task = VerifyTask(index=0, kind=SYMBOLIC_STABILITY,
                      structure="HashSet", backend="native",
                      scope=SCOPE, group="frobnicate")
    with pytest.raises(ValueError):
        execute_task(task, registry)


def test_proofs_are_served_from_cache(tmp_path, registry):
    cache = ResultCache(tmp_path / "cache")
    cold = run_stability_compilation(SCOPE, names=["HashSet"],
                                     registry=registry, cache=cache,
                                     prover=True)
    warm = run_stability_compilation(SCOPE, names=["HashSet"],
                                     registry=registry, cache=cache,
                                     prover=True)
    report_cold, report_warm = cold["HashSet"], warm["HashSet"]
    assert report_cold.cache_hits == 0
    assert report_warm.cache_hits == len(report_warm.task_timings) > 0
    # Proof-bearing verdicts round-trip byte-identically, proved flags
    # and countermodels included.
    assert [(p.m1, p.m2, p.verdict, p.stable_text, p.candidates)
            for p in report_warm.pairs] \
        == [(p.m1, p.m2, p.verdict, p.stable_text, p.candidates)
            for p in report_cold.pairs]
    assert report_warm.proved_count > 0
    assert any(c.countermodel is not None for p in report_warm.pairs
               for c in p.candidates)


def test_prover_off_reuses_bounded_tasks_only(tmp_path, registry):
    cache = ResultCache(tmp_path / "cache")
    with_prover = run_stability_compilation(SCOPE, names=["HashSet"],
                                            registry=registry,
                                            cache=cache, prover=True)
    without = run_stability_compilation(SCOPE, names=["HashSet"],
                                        registry=registry, cache=cache)
    # The bounded tasks are shared (served warm); dropping --prover
    # simply leaves the proof tasks out, restoring bounded verdicts.
    report = without["HashSet"]
    assert report.cache_hits == len(report.task_timings) > 0
    assert report.proved_count == 0
    assert with_prover["HashSet"].proved_count > 0


def test_stability_report_proved_tier_flows_to_conditions(registry):
    reports = run_stability_compilation(SCOPE, names=["HashSet"],
                                        registry=registry, prover=True)
    report = reports["HashSet"]
    conditions = report.stable_conditions(registry.spec("HashSet"))
    assert conditions
    assert all(c.tier in ("weakened", "proved") for c in conditions)
    assert any(c.tier == "proved" for c in conditions)
    assert "proved" in report.summary()
