"""Refinement: every concrete implementation implements its abstract
specification (the obligation the paper discharges with Jahob [52, 53]).

Exhaustive over a small scope plus property-based over random operation
sequences."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import Scope
from repro.impls import (IMPLEMENTATIONS, build_from_state, check_refinement,
                         invoke, new_instance)
from repro.specs import get_spec

ALL_NAMES = tuple(IMPLEMENTATIONS)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_exhaustive_refinement(name, tiny_scope):
    assert check_refinement(name, tiny_scope) == []


@pytest.mark.parametrize("name", ["ListSet", "HashSet"])
def test_set_refinement_default_scope(name):
    assert check_refinement(name, Scope()) == []


def test_build_from_state_roundtrip(tiny_scope):
    for name in ALL_NAMES:
        spec = get_spec(name)
        for state in spec.states(tiny_scope):
            impl = build_from_state(name, state)
            assert impl.abstract_state() == state


def test_invoke_discard_variant_returns_none():
    impl = new_instance("HashSet")
    assert invoke(impl, "add_", ("a",)) is None
    assert invoke(impl, "add", ("b",)) is True


# -- property-based: random op sequences track the abstract semantics -----------

_set_ops = st.lists(
    st.tuples(st.sampled_from(("add", "remove", "contains", "size")),
              st.sampled_from(("a", "b", "c", "d"))),
    max_size=30)


@settings(max_examples=60, deadline=None)
@given(_set_ops, st.sampled_from(("ListSet", "HashSet")))
def test_set_impl_tracks_spec(ops, name):
    spec = get_spec(name)
    impl = new_instance(name)
    state = spec.initial_state
    for op_name, v in ops:
        op = spec.operations[op_name]
        args = (v,) if op.params else ()
        state, expected = op.semantics(state, args)
        assert getattr(impl, op_name)(*args) == expected
        assert impl.abstract_state() == state


_map_ops = st.lists(
    st.tuples(st.sampled_from(("put", "remove", "get", "containsKey",
                               "size")),
              st.sampled_from(("k1", "k2", "k3")),
              st.sampled_from(("x", "y"))),
    max_size=30)


@settings(max_examples=60, deadline=None)
@given(_map_ops, st.sampled_from(("AssociationList", "HashTable")))
def test_map_impl_tracks_spec(ops, name):
    spec = get_spec(name)
    impl = new_instance(name)
    state = spec.initial_state
    for op_name, k, v in ops:
        op = spec.operations[op_name]
        if op_name == "put":
            args = (k, v)
        elif op.params:
            args = (k,)
        else:
            args = ()
        state, expected = op.semantics(state, args)
        assert getattr(impl, op_name)(*args) == expected
        assert impl.abstract_state() == state


_array_programs = st.lists(
    st.tuples(st.sampled_from(("add_at", "remove_at", "set", "get",
                               "indexOf", "lastIndexOf", "size")),
              st.integers(0, 6),
              st.sampled_from(("a", "b", "c"))),
    max_size=30)


@settings(max_examples=60, deadline=None)
@given(_array_programs)
def test_arraylist_impl_tracks_spec(ops):
    spec = get_spec("ArrayList")
    impl = new_instance("ArrayList")
    state = spec.initial_state
    for op_name, i, v in ops:
        op = spec.operations[op_name]
        if op_name == "add_at" or op_name == "set":
            args = (i, v)
        elif op_name in ("remove_at", "get"):
            args = (i,)
        elif op_name in ("indexOf", "lastIndexOf"):
            args = (v,)
        else:
            args = ()
        if not spec.precondition_holds(op, state, args):
            with pytest.raises((IndexError, ValueError)):
                getattr(impl, op_name)(*args)
            continue
        state, expected = op.semantics(state, args)
        assert getattr(impl, op_name)(*args) == expected
        assert impl.abstract_state() == state


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-50, 50), max_size=20))
def test_accumulator_tracks_spec(increments):
    impl = new_instance("Accumulator")
    total = 0
    for v in increments:
        impl.increase(v)
        total += v
    assert impl.read() == total
