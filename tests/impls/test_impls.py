"""Concrete implementation tests, including the paper's key phenomenon:
different operation orders produce different *concrete* states with the
same *abstract* state."""

import pytest

from repro.impls import (Accumulator, ArrayList, AssociationList, HashSet,
                         HashTable, ListSet)


# -- ListSet -----------------------------------------------------------------

def test_listset_basic():
    s = ListSet()
    assert s.add("a") and s.add("b")
    assert not s.add("a")
    assert s.contains("a") and not s.contains("c")
    assert s.size() == 2
    assert s.remove("a") and not s.remove("a")
    assert s.size() == 1


def test_listset_null_rejected():
    s = ListSet()
    with pytest.raises(ValueError):
        s.add(None)
    with pytest.raises(ValueError):
        s.contains(None)
    with pytest.raises(ValueError):
        s.remove(None)


def test_listset_insertion_order_visible_concretely():
    """Section 1.1: insertion orders produce the same abstract set but
    different linked lists."""
    s1, s2 = ListSet(), ListSet()
    s1.add("a"); s1.add("b")
    s2.add("b"); s2.add("a")
    assert s1.abstract_state() == s2.abstract_state()
    assert s1.concrete_shape() != s2.concrete_shape()


def test_listset_remove_head_middle_tail():
    s = ListSet()
    for v in ("a", "b", "c"):
        s.add(v)
    assert s.remove("b")  # middle
    assert s.remove("c")  # head (prepend order: c, b, a)
    assert s.remove("a")  # tail
    assert s.size() == 0


# -- HashSet -----------------------------------------------------------------

def test_hashset_basic_and_resize():
    s = HashSet()
    values = [f"v{i}" for i in range(20)]  # forces several resizes
    for v in values:
        assert s.add(v)
    assert s.size() == 20
    for v in values:
        assert s.contains(v)
    for v in values[:10]:
        assert s.remove(v)
    assert s.size() == 10
    assert s.abstract_state()["contents"] == frozenset(values[10:])


def test_hashset_duplicate_add():
    s = HashSet()
    assert s.add("a")
    assert not s.add("a")
    assert s.size() == 1


def test_hashset_same_abstract_different_layout():
    # "a", "e", "i" all hash to the same bucket (ordinals 97, 101, 105
    # are congruent mod 4), so the chain records insertion order.
    s1, s2 = HashSet(), HashSet()
    for v in ("a", "e", "i"):
        s1.add(v)
    for v in ("i", "e", "a"):
        s2.add(v)
    assert s1.abstract_state() == s2.abstract_state()
    assert s1.concrete_shape() != s2.concrete_shape()


# -- AssociationList / HashTable ------------------------------------------------

@pytest.mark.parametrize("cls", [AssociationList, HashTable])
def test_map_basic(cls):
    m = cls()
    assert m.put("k1", "x") is None
    assert m.put("k1", "y") == "x"
    assert m.get("k1") == "y"
    assert m.get("k2") is None
    assert m.containsKey("k1") and not m.containsKey("k2")
    assert m.size() == 1
    assert m.remove("k1") == "y"
    assert m.remove("k1") is None
    assert m.size() == 0


@pytest.mark.parametrize("cls", [AssociationList, HashTable])
def test_map_null_rejected(cls):
    m = cls()
    with pytest.raises(ValueError):
        m.put(None, "x")
    with pytest.raises(ValueError):
        m.put("k", None)
    with pytest.raises(ValueError):
        m.get(None)


def test_association_list_order_is_concrete_only():
    m1, m2 = AssociationList(), AssociationList()
    m1.put("a", "1"); m1.put("b", "2")
    m2.put("b", "2"); m2.put("a", "1")
    assert m1.abstract_state() == m2.abstract_state()
    assert m1.concrete_shape() != m2.concrete_shape()


def test_hashtable_many_keys_resize():
    m = HashTable()
    for i in range(25):
        m.put(f"k{i}", f"v{i}")
    assert m.size() == 25
    assert all(m.get(f"k{i}") == f"v{i}" for i in range(25))


# -- ArrayList ---------------------------------------------------------------------

def test_arraylist_shifting():
    a = ArrayList()
    a.add_at(0, "b")
    a.add_at(0, "a")       # shift up
    a.add_at(2, "c")       # append
    assert a.abstract_state()["elems"] == ("a", "b", "c")
    assert a.remove_at(1) == "b"
    assert a.abstract_state()["elems"] == ("a", "c")
    assert a.set(1, "z") == "c"
    assert a.abstract_state()["elems"] == ("a", "z")


def test_arraylist_index_of():
    a = ArrayList()
    for i, v in enumerate(("x", "y", "x")):
        a.add_at(i, v)
    assert a.indexOf("x") == 0
    assert a.lastIndexOf("x") == 2
    assert a.indexOf("zz") == -1
    assert a.lastIndexOf("zz") == -1


def test_arraylist_bounds_checked():
    a = ArrayList()
    with pytest.raises(IndexError):
        a.get(0)
    with pytest.raises(IndexError):
        a.add_at(1, "v")
    with pytest.raises(IndexError):
        a.remove_at(0)
    with pytest.raises(IndexError):
        a.set(0, "v")
    with pytest.raises(ValueError):
        a.add_at(0, None)


def test_arraylist_growth_is_concrete_only():
    a = ArrayList()
    for i in range(10):
        a.add_at(i, "v")
    assert a.capacity() >= 10
    assert a.size() == 10
    b = ArrayList()
    for i in range(10):
        b.add_at(0, "v")
    assert a.abstract_state() == b.abstract_state()


# -- Accumulator --------------------------------------------------------------------

def test_accumulator():
    acc = Accumulator()
    acc.increase(5)
    acc.increase(-2)
    assert acc.read() == 3
    assert acc.abstract_state()["value"] == 3
