"""Shared fixtures: small scopes keep exhaustive checks fast in CI."""

import pytest

from repro.eval import Scope


@pytest.fixture
def tiny_scope() -> Scope:
    """Two objects, short sequences: smoke-test sized."""
    return Scope(objects=("a", "b"), values=("x", "y"), ints=(-1, 0, 1),
                 max_seq_len=2)


@pytest.fixture
def small_scope() -> Scope:
    """The default verification scope."""
    return Scope()
