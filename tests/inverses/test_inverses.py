"""Inverse-operation tests (Sections 2.6, 4.2; Table 5.10)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import Scope
from repro.impls import new_instance
from repro.inverses import (INVERSES, Guard, InverseSpec,
                            InverseCall, Arg, apply_inverse,
                            check_all_inverses, check_inverse,
                            generate_inverse_methods, inverse_for,
                            inverses_for)
from repro.runtime import UndoEntry, rollback
from repro.specs import get_spec


def test_eight_inverses_specified():
    """Table 5.10 has exactly eight rows."""
    assert len(INVERSES) == 8


def test_every_mutator_has_an_inverse():
    """Every abstract-state-changing operation is covered (via its
    return-value variant)."""
    for family in ("Accumulator", "Set", "Map", "ArrayList"):
        spec = get_spec(family)
        covered = {inv.op for inv in inverses_for(family)}
        for op in spec.operations.values():
            if op.mutator:
                base = op.base_name or op.name
                assert base in covered, (family, op.name)


def test_all_inverse_methods_verify(small_scope):
    """'All of the eight inverse testing methods verified as generated.'"""
    for result in check_all_inverses(small_scope):
        assert result.verified, result.summary()


def test_inverse_lookup_by_data_structure():
    inv = inverse_for("HashSet", "add")
    assert inv.render() == "if r = true then s2.remove(v)"
    with pytest.raises(KeyError):
        inverse_for("HashSet", "contains")


def test_table_5_10_renderings():
    rendered = {(inv.family, inv.op): inv.render() for inv in INVERSES}
    assert rendered[("Accumulator", "increase")] == "s2.increase(-v)"
    assert rendered[("Map", "put")] \
        == "if r ~= null then s2.put(k, r) else s2.remove(k)"
    assert rendered[("Map", "remove")] == "if r ~= null then s2.put(k, r)"
    assert rendered[("ArrayList", "remove_at")] == "s2.add_at(i, r)"


def test_wrong_inverse_is_caught():
    """An inverse that forgets the guard fails Property 3: removing an
    element that was already present must NOT be undone by remove."""
    wrong = InverseSpec(family="Set", op="add", guard=Guard.NONE,
                        then=(InverseCall("remove", (Arg.param("v"),)),))
    result = check_inverse("Set", wrong, Scope(objects=("a", "b")))
    assert not result.verified
    ce = result.counterexamples[0]
    assert ce.state != ce.restored


def test_wrong_map_inverse_is_caught():
    """put's inverse must restore the previous binding, not remove."""
    wrong = InverseSpec(family="Map", op="put", guard=Guard.NONE,
                        then=(InverseCall("remove", (Arg.param("k"),)),))
    result = check_inverse("Map", wrong,
                           Scope(objects=("a",), values=("x", "y")))
    assert not result.verified


def test_apply_inverse_restores_abstract_state():
    spec = get_spec("Map")
    put = spec.operations["put"]
    state = spec.initial_state
    state, _ = put.semantics(state, ("k", "x"))
    mid, r = put.semantics(state, ("k", "y"))
    restored = apply_inverse(spec, inverse_for("Map", "put"), mid,
                             {"k": "k", "v": "y"}, r)
    assert restored == state


def test_inverse_method_rendering_matches_figure_2_3():
    methods = {m.name: m for m in generate_inverse_methods()}
    java = methods["add0"].render_java()
    assert "boolean r = s.add(v);" in java
    assert "if (r) { s.remove(v); }" in java
    assert 's..contents = s..(old contents)' in java


def test_inverse_method_rendering_matches_figure_2_4():
    methods = {m.name: m for m in generate_inverse_methods()}
    java = methods["put0"].render_java()
    assert "Object r = s.put(k, v);" in java
    assert "if (r != null) { s.put(k, r); } else { s.remove(k); }" in java


# -- concrete rollback (undo logs on linked structures) -------------------------

@pytest.mark.parametrize("name", ["ListSet", "HashSet"])
def test_concrete_rollback_set(name):
    impl = new_instance(name)
    impl.add("x")
    before = impl.abstract_state()
    log = []
    r = impl.add("a")
    log.append(UndoEntry("add", ("a",), r))
    r = impl.remove("x")
    log.append(UndoEntry("remove", ("x",), r))
    r = impl.add("a")  # duplicate: returns False, inverse must skip
    log.append(UndoEntry("add", ("a",), r))
    rollback(impl, name, log)
    assert impl.abstract_state() == before
    assert log == []


@pytest.mark.parametrize("name", ["AssociationList", "HashTable"])
def test_concrete_rollback_map(name):
    impl = new_instance(name)
    impl.put("k", "x")
    before = impl.abstract_state()
    log = []
    log.append(UndoEntry("put", ("k", "y"), impl.put("k", "y")))
    log.append(UndoEntry("put", ("j", "x"), impl.put("j", "x")))
    log.append(UndoEntry("remove", ("k",), impl.remove("k")))
    rollback(impl, name, log)
    assert impl.abstract_state() == before


def test_concrete_rollback_arraylist():
    impl = new_instance("ArrayList")
    for i, v in enumerate(("a", "b", "c")):
        impl.add_at(i, v)
    before = impl.abstract_state()
    log = []
    impl.add_at(1, "z")
    log.append(UndoEntry("add_at", (1, "z"), None))
    log.append(UndoEntry("remove_at", (0,), impl.remove_at(0)))
    log.append(UndoEntry("set", (0, "q"), impl.set(0, "q")))
    rollback(impl, "ArrayList", log)
    assert impl.abstract_state() == before


def test_rollback_restores_abstract_not_concrete():
    """Section 1.3: the reinserted element may appear at a different
    position in the list; only the abstract set is restored."""
    impl = new_instance("ListSet")
    for v in ("a", "b", "c"):
        impl.add(v)
    shape_before = impl.concrete_shape()
    abstract_before = impl.abstract_state()
    log = [UndoEntry("remove", ("b",), impl.remove("b"))]
    rollback(impl, "ListSet", log)
    assert impl.abstract_state() == abstract_before
    assert impl.concrete_shape() != shape_before  # 'b' re-inserted at head


# -- property-based: arbitrary mutation sequences roll back exactly -----------------

_mutations = st.lists(
    st.tuples(st.sampled_from(("add", "remove")),
              st.sampled_from(("a", "b", "c"))),
    max_size=20)


@settings(max_examples=60, deadline=None)
@given(_mutations, st.sampled_from(("ListSet", "HashSet")))
def test_rollback_roundtrip_property_sets(ops, name):
    impl = new_instance(name)
    impl.add("seed")
    before = impl.abstract_state()
    log = [UndoEntry(op, (v,), getattr(impl, op)(v)) for op, v in ops]
    rollback(impl, name, log)
    assert impl.abstract_state() == before


_map_mutations = st.lists(
    st.tuples(st.sampled_from(("put", "remove")),
              st.sampled_from(("k1", "k2")), st.sampled_from(("x", "y"))),
    max_size=20)


@settings(max_examples=60, deadline=None)
@given(_map_mutations, st.sampled_from(("AssociationList", "HashTable")))
def test_rollback_roundtrip_property_maps(ops, name):
    impl = new_instance(name)
    impl.put("seed", "x")
    before = impl.abstract_state()
    log = []
    for op, k, v in ops:
        if op == "put":
            log.append(UndoEntry("put", (k, v), impl.put(k, v)))
        else:
            log.append(UndoEntry("remove", (k,), impl.remove(k)))
    rollback(impl, name, log)
    assert impl.abstract_state() == before
