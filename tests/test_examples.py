"""The example applications must stay runnable (deliverable smoke tests)."""

import os
import pathlib
import subprocess
import sys
import tempfile

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def _run(script: str) -> subprocess.CompletedProcess:
    # A scratch cwd: examples using Session write ./.repro-cache by
    # default, which must not land in (or be served from) the repo root.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    with tempfile.TemporaryDirectory() as scratch:
        return subprocess.run(
            [sys.executable, str(EXAMPLES / script)],
            capture_output=True, text=True, timeout=300,
            cwd=scratch, env=env)


def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "v1 ~= v2 | r1" in result.stdout
    assert "abstract states equal: True" in result.stdout
    assert "concrete layouts equal: False" in result.stdout


def test_custom_datastructure_runs():
    result = _run("custom_datastructure.py")
    assert result.returncode == 0, result.stderr
    assert "naive write;write condition" in result.stdout
    assert "FAILED" in result.stdout          # the unsound guess is refuted
    assert "repaired write;write condition" in result.stdout


@pytest.mark.slow
def test_speculative_index_runs():
    result = _run("speculative_index.py")
    assert result.returncode == 0, result.stderr
    assert "serializable=True" in result.stdout


def test_workload_throughput_runs():
    result = _run("workload_throughput.py")
    assert result.returncode == 0, result.stderr
    assert "commutativity wins" in result.stdout
    assert "workers=4" in result.stdout
