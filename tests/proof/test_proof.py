"""Proof-language and layered-prover tests (Sections 1.4, 5.2)."""

import pytest

from repro.logic import parse_formula
from repro.logic.sorts import Sort
from repro.logic.symbols import SymbolTable
from repro.proof import (Assuming, Cases, Note, PickWitness, ProofError,
                         ProofFailure, ProofScript, Prover,
                         arraylist_environments, check_all_scripts,
                         command_count_table, hard_methods, make_prover,
                         script_for)

TABLE = SymbolTable(vars={"p": Sort.BOOL, "q": Sort.BOOL, "r": Sort.BOOL,
                          "x": Sort.INT, "y": Sort.INT, "s": Sort.SEQ,
                          "v": Sort.OBJ})


def f(text, extra=None):
    table = TABLE if extra is None else SymbolTable(
        vars={**TABLE.vars, **extra})
    return parse_formula(text, table)


# -- layered prover ------------------------------------------------------------

def test_propositional_engine():
    prover = Prover()
    prover.prove([f("p"), f("p --> q")], f("q"))
    prover.prove([], f("p | ~p"))
    with pytest.raises(ProofFailure):
        prover.prove([f("p | q")], f("p"))


def test_euf_engine():
    prover = Prover()
    prover.prove([f("x = y"), f("y = x + 0")], f("x = y"))
    # Congruence: x = y |- idx(s, v) = idx(s, v) trivially, and deeper:
    prover.prove([f("x = y")], f("at(s, x) = at(s, y)"))
    with pytest.raises(ProofFailure):
        prover.prove([f("x = y")], f("at(s, x) = at(s, y + 1)"))


def test_euf_inconsistent_premises_prove_anything():
    prover = Prover()
    prover.prove([f("x = y"), f("x ~= y")], f("at(s, x) = at(s, y + 1)"))


def test_finite_engine():
    envs = [{"x": a, "y": b} for a in range(3) for b in range(3)]
    prover = Prover(environments=envs)
    prover.prove([f("x < y")], f("x + 1 <= y"))
    with pytest.raises(ProofFailure):
        prover.prove([f("x <= y")], f("x < y"))


def test_finite_engine_needs_environments():
    prover = Prover()  # no environments
    with pytest.raises(ProofFailure):
        prover.prove([f("x < y")], f("x + 1 <= y"))


# -- proof commands --------------------------------------------------------------

def _int_prover():
    return Prover(environments=[{"x": a, "y": b, "w": c}
                                for a in range(4) for b in range(4)
                                for c in range(4)])


def test_note_adds_lemma():
    script = ProofScript(
        name="chain", premises=(f("x < y"),), goal=f("x < y + 1"),
        commands=(Note(f("x + 1 <= y")),))
    assert script.check(_int_prover()).ok


def test_note_must_be_provable():
    script = ProofScript(
        name="bad-note", premises=(f("x <= y"),), goal=f("x <= y"),
        commands=(Note(f("x < y")),))
    outcome = script.check(_int_prover())
    assert not outcome.ok
    assert "cannot prove" in outcome.message


def test_assuming_discharges_implication():
    script = ProofScript(
        name="imp", premises=(), goal=f("x < y --> x <= y"),
        commands=(Assuming(f("x < y"), f("x <= y")),))
    assert script.check(_int_prover()).ok


def test_pick_witness_instantiates():
    exists = f("EX j. 0 <= j & j < y & j + 1 = y")
    script = ProofScript(
        name="wit", premises=(f("1 <= y"), exists), goal=f("0 < y"),
        commands=(PickWitness(exists, "w"),))
    assert script.check(_int_prover()).ok


def test_pick_witness_requires_existential():
    with pytest.raises(ProofError):
        PickWitness(f("x < y"), "w").run(None, None)


def test_pick_witness_freshness():
    exists = f("EX j. j < y")
    script = ProofScript(
        name="stale", premises=(f("x < y"), exists), goal=f("x < y"),
        commands=(PickWitness(exists, "x"),))  # x is already in scope
    outcome = script.check(_int_prover())
    assert not outcome.ok
    assert "fresh" in outcome.message


def test_cases_command():
    script = ProofScript(
        name="cases", premises=(f("x = 0 | x = 1"),), goal=f("x <= 1"),
        commands=(Cases((f("x = 0"), f("x = 1")), f("x <= 1")),))
    assert script.check(_int_prover()).ok


def test_cases_requires_exhaustive_alternatives():
    script = ProofScript(
        name="nonexhaustive", premises=(f("x <= 2"),), goal=f("x <= 2"),
        commands=(Cases((f("x = 0"), f("x = 1")), f("x <= 2")),))
    assert not script.check(_int_prover()).ok


# -- the Section 5.2.1 reconstruction --------------------------------------------

def test_all_four_category_scripts_check():
    outcomes = check_all_scripts(max_len=3)
    assert len(outcomes) == 4
    assert all(o.ok for o in outcomes), [o.summary() for o in outcomes]


def test_57_hard_methods():
    methods = hard_methods()
    assert len(methods) == 57
    by_category = {}
    for m in methods:
        by_category[m.category] = by_category.get(m.category, 0) + 1
    assert by_category == {1: 12, 2: 8, 3: 20, 4: 17}
    assert len({m.method_name for m in methods}) == 57


def test_every_hard_method_has_a_script():
    for method in hard_methods():
        assert script_for(method).name


def test_command_count_table_structure():
    counts = command_count_table()
    assert set(counts) >= {"note", "assuming", "pickWitness", "total"}
    assert counts["total"] == (counts["note"] + counts["assuming"]
                               + counts["pickWitness"])
    assert counts["total"] > 100  # same order of magnitude as paper's 201


def test_environments_cover_witness_variable():
    envs = arraylist_environments(max_len=2)
    assert all("w" in env for env in envs)
    prover = make_prover(max_len=2)
    assert prover.environments
