"""Condition-object tests: vocabulary enforcement (Section 4.1.2),
catalog counting (Section 5.1)."""

import pytest

from repro.commutativity import (CommutativityCondition, Kind,
                                 VocabularyError, all_conditions, condition,
                                 conditions_for, total_condition_count)
from repro.specs import get_spec


def test_total_is_765():
    assert total_condition_count() == 765


def test_per_family_counts():
    counts = {f: len(c) for f, c in all_conditions().items()}
    assert counts == {"Accumulator": 12, "Set": 108, "Map": 147,
                      "ArrayList": 243}


def test_every_pair_has_all_three_kinds():
    for family, conds in all_conditions().items():
        spec = get_spec(family)
        ops = list(spec.operations)
        seen = {(c.m1, c.m2, c.kind) for c in conds}
        for m1 in ops:
            for m2 in ops:
                for kind in Kind:
                    assert (m1, m2, kind) in seen, (family, m1, m2, kind)


def test_lookup_by_data_structure_name():
    cond = condition("HashSet", "contains", "add", Kind.BETWEEN)
    assert cond.text == "v1 ~= v2 | r1"  # Figure 2-2's condition
    assert conditions_for("ListSet") == conditions_for("HashSet")


def test_lookup_missing_raises():
    with pytest.raises(KeyError):
        condition("HashSet", "contains", "frobnicate", Kind.BETWEEN)


def test_before_condition_cannot_reference_returns():
    spec = get_spec("Set")
    with pytest.raises(VocabularyError):
        CommutativityCondition(family="Set", m1="add", m2="add",
                               kind=Kind.BEFORE, text="~r1", spec=spec)


def test_before_condition_cannot_reference_intermediate_state():
    spec = get_spec("Set")
    with pytest.raises(VocabularyError):
        CommutativityCondition(family="Set", m1="add", m2="add",
                               kind=Kind.BEFORE, text="v1 : s2", spec=spec)


def test_between_condition_cannot_reference_r2_or_s3():
    spec = get_spec("Set")
    with pytest.raises(VocabularyError):
        CommutativityCondition(family="Set", m1="add", m2="add",
                               kind=Kind.BETWEEN, text="~r2", spec=spec)
    with pytest.raises(VocabularyError):
        CommutativityCondition(family="Set", m1="add", m2="add",
                               kind=Kind.BETWEEN, text="v1 : s3", spec=spec)


def test_discard_variant_has_no_r1():
    # The symbol table omits r1 for a discard-variant first operation,
    # so referencing it fails at parse time (before vocabulary checking).
    from repro.logic import ParseError
    spec = get_spec("Set")
    with pytest.raises((VocabularyError, ParseError)):
        CommutativityCondition(family="Set", m1="add_", m2="add",
                               kind=Kind.BETWEEN, text="~r1", spec=spec)


def test_after_condition_may_reference_everything():
    spec = get_spec("Set")
    cond = CommutativityCondition(
        family="Set", m1="add", m2="remove", kind=Kind.AFTER,
        text="~r1 & ~r2 & v1 : s3 & v2 : s2 & v1 : s1", spec=spec)
    assert cond.formula is not None


def test_vocabulary_restrictions_hold_across_catalog():
    """Every catalog entry respects its kind's vocabulary (this is what
    CommutativityCondition.__post_init__ enforces; re-assert en masse)."""
    for conds in all_conditions().values():
        for cond in conds:
            assert cond.formula is not None


def test_kind_counts_per_family():
    for family, conds in all_conditions().items():
        per_kind = {}
        for c in conds:
            per_kind[c.kind] = per_kind.get(c.kind, 0) + 1
        n = len(get_spec(family).operations) ** 2
        assert per_kind == {Kind.BEFORE: n, Kind.BETWEEN: n, Kind.AFTER: n}


def test_dynamic_text_defaults_to_abstract():
    cond = condition("Accumulator", "increase", "read", Kind.BEFORE)
    assert cond.dynamic_formula == cond.formula


def test_before_tables_are_symmetric():
    """Section 5.1: 'The before condition tables are symmetric (for a
    given pair of operations, the commutativity conditions are the same
    for both execution orders).'  Checked semantically: phi(m1;m2)
    evaluated at (s, a1, a2) equals phi(m2;m1) at (s, a2, a1)."""
    from repro.commutativity.bounded import (case_environment,
                                             enumerate_cases)
    from repro.eval import EvalContext, Scope, evaluate
    scopes = {"Accumulator": Scope(), "Set": Scope(objects=("a", "b")),
              "Map": Scope(objects=("a", "b"), values=("x", "y")),
              "ArrayList": Scope(objects=("a", "b"), max_seq_len=2)}
    for family, scope in scopes.items():
        spec = get_spec(family)
        ctx = EvalContext(observe=spec.observe)
        for cond in conditions_for(family):
            if cond.kind is not Kind.BEFORE:
                continue
            mirror = condition(family, cond.m2, cond.m1, Kind.BEFORE)
            for case in enumerate_cases(spec, cond.op1, cond.op2, scope):
                # Symmetry is claimed where both orders are defined:
                # skip cases whose reverse order violates a precondition.
                if not spec.precondition_holds(cond.op2, case.state,
                                               case.args2):
                    continue
                mid_b, _ = cond.op2.semantics(case.state, case.args2)
                if not spec.precondition_holds(cond.op1, mid_b,
                                               case.args1):
                    continue
                env = case_environment(cond.op1, cond.op2, case)
                env = {k: v for k, v in env.items()
                       if k not in ("s2", "s3", "r1", "r2")}
                mirrored = dict(env)
                for p in cond.op1.params:
                    mirrored[f"{p.name}2"] = env[f"{p.name}1"]
                for p in cond.op2.params:
                    mirrored[f"{p.name}1"] = env[f"{p.name}2"]
                assert evaluate(cond.formula, env, ctx) \
                    == evaluate(mirror.formula, mirrored, ctx), \
                    (family, cond.m1, cond.m2, env)
