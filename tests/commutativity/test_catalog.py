"""Catalog validation: every condition in every family is sound AND
complete against the executable semantics (this is the repository's
analogue of the paper's 1530 verified testing methods).

The ArrayList sweep at the full default scope runs in the benchmark
harness; here a reduced scope keeps the suite fast while still crossing
every branch of every condition."""

import pytest

from repro.commutativity import all_conditions, check_conditions
from repro.commutativity.catalog import set_conditions
from repro.eval import Scope
from repro.specs import get_spec

VALIDATION_SCOPES = {
    "Accumulator": Scope(),
    "Set": Scope(),
    "Map": Scope(),
    "ArrayList": Scope(objects=("a", "b"), max_seq_len=3),
}


def _grouped(family):
    groups = {}
    for cond in all_conditions()[family]:
        groups.setdefault((cond.m1, cond.m2), []).append(cond)
    return groups


@pytest.mark.parametrize("family", ["Accumulator", "Set", "Map"])
def test_family_catalog_sound_and_complete(family):
    spec = get_spec(family)
    scope = VALIDATION_SCOPES[family]
    for group in _grouped(family).values():
        for result in check_conditions(spec, group, scope):
            assert result.verified, result.summary()


@pytest.mark.parametrize("m1", ["add_at", "get", "indexOf", "lastIndexOf",
                                "remove_at", "remove_at_", "set", "set_",
                                "size"])
def test_arraylist_catalog_sound_and_complete(m1):
    spec = get_spec("ArrayList")
    scope = VALIDATION_SCOPES["ArrayList"]
    for (a, _b), group in _grouped("ArrayList").items():
        if a != m1:
            continue
        for result in check_conditions(spec, group, scope):
            assert result.verified, result.summary()


def test_set_dynamic_column_equivalent():
    """The dynamic (observer-call) forms of Tables 5.2/5.3 are equivalent
    to the abstract forms."""
    spec = get_spec("Set")
    scope = Scope(objects=("a", "b", "c"))
    for group in _grouped("Set").values():
        for result in check_conditions(spec, group, scope,
                                       use_dynamic=True):
            assert result.verified, result.summary()


def test_figure_2_2_condition_is_in_catalog():
    """The worked example: contains(v1)/add(v2) between condition is
    (v1 ~= v2 | r1)."""
    from repro.commutativity import Kind, condition
    cond = condition("HashSet", "contains", "add", Kind.BETWEEN)
    assert cond.text == "v1 ~= v2 | r1"


def test_paper_quoted_add_add_conditions():
    """Section 5.1: between condition for r1=add(v1); r2=add(v2) is
    (v1 ~= v2 | ~r1), while for the discard variants it is true."""
    from repro.commutativity import Kind, condition
    with_returns = condition("Set", "add", "add", Kind.BETWEEN)
    assert with_returns.text == "v1 ~= v2 | ~r1"
    discard = condition("Set", "add_", "add_", Kind.BETWEEN)
    assert discard.text == "true"


def test_update_updates_never_commute_on_same_key():
    """Table 5.4: put/remove pairs demand k1 ~= k2."""
    from repro.commutativity import Kind, condition
    for m1 in ("put", "put_", "remove", "remove_"):
        for m2 in ("put", "put_", "remove", "remove_"):
            if {m1.rstrip("_"), m2.rstrip("_")} == {"put", "remove"}:
                cond = condition("Map", m1, m2, Kind.BEFORE)
                assert cond.text == "k1 ~= k2"


def test_size_never_commutes_with_arraylist_inserts():
    """add_at/remove_at always change size, so they never commute with
    size(): the sound and complete condition is false."""
    from repro.commutativity import Kind, condition
    for other in ("add_at", "remove_at", "remove_at_"):
        assert condition("ArrayList", "size", other, Kind.BEFORE).text \
            == "false"
        assert condition("ArrayList", other, "size", Kind.BEFORE).text \
            == "false"


def test_set_dynamic_rewrites():
    assert set_conditions.dynamic_text("v1 : s1") \
        == "s1.contains(v1) = true"
    assert set_conditions.dynamic_text("v1 ~= v2 | v2 ~: s1") \
        == "v1 ~= v2 | s1.contains(v2) = false"
