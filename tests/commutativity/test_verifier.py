"""Verification-orchestration tests (the Table 5.8 machinery)."""

import pytest

from repro.commutativity import verify_all, verify_data_structure
from repro.eval import Scope

SCOPE = Scope(objects=("a", "b"), values=("x", "y"), max_seq_len=2)


def test_report_counts_accumulator():
    report = verify_data_structure("Accumulator", SCOPE)
    assert report.condition_count == 12
    assert report.method_count == 24
    assert report.all_verified
    assert report.failures() == []
    assert "Accumulator" in report.summary()
    assert "all verified" in report.summary()


@pytest.mark.parametrize("backend", ["bounded", "symbolic"])
def test_both_backends_verify_sets(backend):
    report = verify_data_structure("ListSet", SCOPE, backend=backend)
    assert report.backend == backend
    assert report.all_verified
    assert report.condition_count == 108


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        verify_data_structure("ListSet", SCOPE, backend="jahob")


def test_verify_all_covers_six_structures():
    reports = verify_all(SCOPE, backend="symbolic",
                         names=("Accumulator", "ListSet", "HashSet",
                                "AssociationList", "HashTable",
                                "ArrayList"))
    assert len(reports) == 6
    assert sum(r.condition_count for r in reports.values()) == 765
    assert sum(r.method_count for r in reports.values()) == 1530
    assert all(r.all_verified for r in reports.values())


def test_elapsed_time_recorded():
    report = verify_data_structure("Accumulator", SCOPE)
    assert report.elapsed > 0
    assert all(r.elapsed >= 0 for r in report.results)
