"""Testing-method generator tests (Figures 2-2, 3-1)."""

from repro.commutativity import (Direction, Kind, condition, conditions_for,
                                 generate_methods)


def test_two_methods_per_condition():
    conds = conditions_for("Accumulator")
    methods = generate_methods(conds)
    assert len(methods) == 2 * len(conds)
    directions = {m.direction for m in methods}
    assert directions == {Direction.SOUNDNESS, Direction.COMPLETENESS}


def test_full_catalog_yields_1530_methods():
    from repro.commutativity import all_conditions
    per_family = {f: len(generate_methods(c))
                  for f, c in all_conditions().items()}
    total = (per_family["Accumulator"] + 2 * per_family["Set"]
             + 2 * per_family["Map"] + per_family["ArrayList"])
    assert total == 1530


def test_method_names_follow_paper_convention():
    cond = condition("HashSet", "contains", "add", Kind.BETWEEN)
    sound, complete = generate_methods([cond])
    assert sound.name.startswith("contains_add_between_s_")
    assert complete.name.startswith("contains_add_between_c_")


def test_render_java_soundness_shape():
    """The rendered method matches Figure 2-2's structure."""
    cond = condition("HashSet", "contains", "add", Kind.BETWEEN)
    sound, complete = generate_methods([cond])
    java = sound.render_java()
    lines = java.splitlines()
    assert lines[0].startswith("void contains_add_between_s_")
    assert 'requires "sa ~= null & sb ~= null & sa ~= sb' in java
    assert 'assume "v1 ~= v2 | r1"' in java
    # Order: contains on sa, assume, add on sa, then reversed on sb.
    body = [line.strip() for line in lines
            if line.strip().startswith(("boolean", "/*: assume"))]
    assert body[0].startswith("boolean r1a = sa.contains")
    assert "assume" in body[1]
    assert body[2].startswith("boolean r2a = sa.add")
    assert body[3].startswith("boolean r2b = sb.add")
    assert body[4].startswith("boolean r1b = sb.contains")
    assert 'assert "r1a = r1b & r2a = r2b' in java


def test_render_java_completeness_negates():
    cond = condition("HashSet", "contains", "add", Kind.BETWEEN)
    _, complete = generate_methods([cond])
    java = complete.render_java()
    assert 'assume "~(v1 ~= v2 | r1)"' in java
    assert 'assert "~(' in java


def test_before_condition_assumed_first():
    cond = condition("HashSet", "contains", "add", Kind.BEFORE)
    sound, _ = generate_methods([cond])
    lines = [line.strip() for line in sound.render_java().splitlines()]
    body_start = lines.index("{")
    assert "assume" in lines[body_start + 1]


def test_after_condition_assumed_after_both_ops():
    cond = condition("HashSet", "contains", "add", Kind.AFTER)
    sound, _ = generate_methods([cond])
    java = sound.render_java()
    add_pos = java.index("sa.add")
    assume_pos = java.index("assume")
    assert assume_pos > add_pos


def test_void_operations_render_without_result():
    cond = condition("ArrayList", "add_at", "add_at", Kind.BEFORE)
    sound, _ = generate_methods([cond])
    java = sound.render_java()
    assert "sa.add_at(i1, v1);" in java
    assert "r1a" not in java


def test_discard_variant_strips_trailing_underscore():
    cond = condition("HashSet", "add_", "add_", Kind.BEFORE)
    sound, _ = generate_methods([cond])
    assert sound.name.startswith("add_add_before_s_")
    assert "sa.add(v1);" in sound.render_java()
