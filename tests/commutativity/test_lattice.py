"""Commutativity-lattice tests (Chapter 6)."""

from repro.commutativity import Kind, condition
from repro.commutativity.lattice import (clauses_of, completeness_frontier,
                                         lattice_of, soundness_is_preserved)
from repro.eval import Scope

SCOPE = Scope(objects=("a", "b", "c"))


def test_clauses_of_disjunction():
    cond = condition("Set", "contains", "add", Kind.BEFORE)
    assert len(clauses_of(cond)) == 2


def test_clauses_of_atomic_condition():
    cond = condition("Set", "add", "remove", Kind.BEFORE)
    assert len(clauses_of(cond)) == 1


def test_lattice_size_is_powerset():
    cond = condition("Set", "contains", "add", Kind.BEFORE)
    points = lattice_of(cond, SCOPE)
    assert len(points) == 4  # 2^2 clause subsets


def test_dropping_clauses_preserves_soundness():
    """The paper's lattice property: every clause subset stays sound."""
    for m1, m2 in (("contains", "add"), ("contains", "remove"),
                   ("remove", "remove")):
        cond = condition("Set", m1, m2, Kind.BEFORE)
        points = lattice_of(cond, SCOPE)
        assert soundness_is_preserved(points), (m1, m2)


def test_only_full_condition_is_complete():
    cond = condition("Set", "contains", "add", Kind.BEFORE)
    points = lattice_of(cond, SCOPE)
    complete = [p for p in points if p.complete]
    assert len(complete) == 1
    assert len(complete[0].kept) == 2


def test_bottom_of_lattice_is_false():
    cond = condition("Set", "contains", "add", Kind.BEFORE)
    points = lattice_of(cond, SCOPE)
    bottom = next(p for p in points if p.kept == ())
    assert bottom.text == "false"
    assert bottom.sound and not bottom.complete


def test_completeness_frontier():
    cond = condition("Set", "contains", "add", Kind.BEFORE)
    frontier = completeness_frontier(lattice_of(cond, SCOPE))
    assert len(frontier) == 1
    assert set(frontier[0].kept) == {0, 1}


def test_map_lattice():
    cond = condition("Map", "get", "put", Kind.BEFORE)
    points = lattice_of(cond, SCOPE)
    assert soundness_is_preserved(points)
    assert sum(1 for p in points if p.complete) == 1
