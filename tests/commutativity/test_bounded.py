"""Bounded-backend tests: the oracle itself, soundness/completeness
counterexample detection on deliberately wrong conditions."""

import pytest

from repro.commutativity import (Case, CommutativityCondition, Kind,
                                 check_condition, commutes, condition,
                                 enumerate_cases, exact_condition_table)
from repro.eval import Record, Scope
from repro.specs import get_spec

SCOPE = Scope(objects=("a", "b"), values=("x", "y"), max_seq_len=2)


def test_commutes_ground_truth_add_add():
    spec = get_spec("Set")
    add = spec.operations["add"]
    s0 = Record(contents=frozenset(), size=0)
    mid, r1 = add.semantics(s0, ("a",))
    fin, r2 = add.semantics(mid, ("a",))
    case = Case(s0, ("a",), ("a",), mid, fin, r1, r2)
    # Same element, not initially present: returns differ across orders.
    assert not commutes(spec, add, add, case)
    s1 = Record(contents=frozenset({"a"}), size=1)
    mid, r1 = add.semantics(s1, ("a",))
    fin, r2 = add.semantics(mid, ("a",))
    case = Case(s1, ("a",), ("a",), mid, fin, r1, r2)
    assert commutes(spec, add, add, case)


def test_commutes_detects_precondition_loss():
    """add_at at the end of the list cannot run after a remove_at — the
    reverse order violates the precondition (Property 1's clause 1)."""
    spec = get_spec("ArrayList")
    add_at = spec.operations["add_at"]
    remove_at = spec.operations["remove_at"]
    s0 = Record(elems=("a",), size=1)
    mid, r1 = add_at.semantics(s0, (1, "a"))  # append at index 1 = size
    fin, r2 = remove_at.semantics(mid, (1,))
    case = Case(s0, (1, "a"), (1,), mid, fin, r1, r2)
    assert not commutes(spec, add_at, remove_at, case)


def test_correct_condition_verifies():
    cond = condition("HashSet", "contains", "add", Kind.BETWEEN)
    result = check_condition(get_spec("Set"), cond, SCOPE)
    assert result.verified
    assert result.cases > 0
    assert "verified" in result.summary()


def test_unsound_condition_caught():
    """'true' for contains/add is too permissive: soundness fails."""
    spec = get_spec("Set")
    wrong = CommutativityCondition(family="Set", m1="contains", m2="add",
                                   kind=Kind.BEFORE, text="true", spec=spec)
    result = check_condition(spec, wrong, SCOPE)
    assert not result.verified
    assert any(c.direction == "soundness" for c in result.counterexamples)


def test_incomplete_condition_caught():
    """'false' is trivially sound but incomplete."""
    spec = get_spec("Set")
    wrong = CommutativityCondition(family="Set", m1="contains", m2="add",
                                   kind=Kind.BEFORE, text="false", spec=spec)
    result = check_condition(spec, wrong, SCOPE)
    assert not result.verified
    assert all(c.direction == "completeness"
               for c in result.counterexamples)


def test_too_strong_clause_is_incomplete():
    """Dropping the membership disjunct keeps soundness, loses
    completeness (the lattice property of Chapter 6)."""
    spec = get_spec("Set")
    weaker = CommutativityCondition(family="Set", m1="contains", m2="add",
                                    kind=Kind.BEFORE, text="v1 ~= v2",
                                    spec=spec)
    result = check_condition(spec, weaker, SCOPE)
    directions = {c.direction for c in result.counterexamples}
    assert directions == {"completeness"}


def test_counterexample_details_actionable():
    spec = get_spec("Set")
    wrong = CommutativityCondition(family="Set", m1="add", m2="remove",
                                   kind=Kind.BEFORE, text="true", spec=spec)
    result = check_condition(spec, wrong, SCOPE)
    ce = result.counterexamples[0]
    assert ce.condition_value is True and ce.commuted is False
    # Same-element add/remove never commutes: v1 == v2 in the witness.
    assert ce.args1 == ce.args2


def test_enumerate_cases_respects_preconditions():
    spec = get_spec("ArrayList")
    get_op = spec.operations["get"]
    for case in enumerate_cases(spec, get_op, get_op, SCOPE):
        assert 0 <= case.args1[0] < case.state["size"]
        assert 0 <= case.args2[0] < case.state["size"]


def test_exact_condition_table_matches_condition():
    spec = get_spec("Set")
    cond = condition("Set", "add", "remove", Kind.BEFORE)
    table = exact_condition_table(spec, cond.op1, cond.op2, SCOPE)
    assert table  # nonempty
    for (state, args1, args2), truth in table.items():
        assert truth == (args1[0] != args2[0])


def test_check_conditions_requires_single_pair():
    from repro.commutativity import check_conditions
    spec = get_spec("Set")
    c1 = condition("Set", "add", "add", Kind.BEFORE)
    c2 = condition("Set", "add", "remove", Kind.BEFORE)
    with pytest.raises(ValueError):
        check_conditions(spec, [c1, c2], SCOPE)


def test_dynamic_formulas_also_verify():
    """The fourth-column (observer-call) forms are equivalent."""
    spec = get_spec("Set")
    for m1, m2 in (("add", "contains"), ("contains", "remove"),
                   ("remove", "size")):
        cond = condition("Set", m1, m2, Kind.BEFORE)
        result = check_condition(spec, cond, SCOPE, use_dynamic=True)
        assert result.verified, cond
