"""Condition-synthesis tests: deriving conditions from semantics and
cross-validating the hand-written catalog."""

import pytest

from repro.commutativity import Kind, condition
from repro.commutativity.synthesis import (parse_atoms, synthesize,
                                           validate_against_catalog)
from repro.eval import Scope
from repro.specs import get_spec

SCOPE = Scope(objects=("a", "b", "c"))


def test_synthesize_contains_add():
    spec = get_spec("Set")
    atoms = parse_atoms(spec, "contains", "add",
                        ["v1 = v2", "v1 : s1", "v2 : s1"])
    result = synthesize(spec, "contains", "add", Kind.BEFORE, atoms, SCOPE)
    assert result.succeeded
    assert validate_against_catalog(
        condition("Set", "contains", "add", Kind.BEFORE),
        ["v1 = v2", "v1 : s1", "v2 : s1"], SCOPE)


def test_synthesize_add_remove_minimal():
    spec = get_spec("Set")
    atoms = parse_atoms(spec, "add", "remove",
                        ["v1 = v2", "v1 : s1", "v2 : s1"])
    result = synthesize(spec, "add", "remove", Kind.BEFORE, atoms, SCOPE)
    assert result.succeeded
    # The minimized form should not mention membership at all.
    assert result.text == "v1 ~= v2"


def test_synthesize_trivial_true():
    spec = get_spec("Set")
    result = synthesize(spec, "contains", "contains", Kind.BEFORE, [],
                        SCOPE)
    assert result.succeeded
    assert result.text == "true"


def test_synthesize_trivial_false():
    spec = get_spec("ArrayList")
    result = synthesize(spec, "size", "add_at", Kind.BEFORE, [],
                        Scope(objects=("a", "b"), max_seq_len=2))
    assert result.succeeded
    assert result.text == "false"


def test_insufficient_atoms_detected():
    """Equality alone cannot express contains/add commutativity."""
    spec = get_spec("Set")
    atoms = parse_atoms(spec, "contains", "add", ["v1 = v2"])
    result = synthesize(spec, "contains", "add", Kind.BEFORE, atoms, SCOPE)
    assert not result.succeeded
    assert result.ambiguous is not None


def test_atom_vocabulary_enforced():
    spec = get_spec("Set")
    atoms = parse_atoms(spec, "contains", "add", ["~r1"])
    with pytest.raises(ValueError):
        synthesize(spec, "contains", "add", Kind.BEFORE, atoms, SCOPE)


def test_synthesized_map_condition_matches_catalog():
    assert validate_against_catalog(
        condition("Map", "get", "put", Kind.BEFORE),
        ["k1 = k2", "s1.get(k1) = v2"], SCOPE)


def test_synthesized_accumulator_condition():
    spec = get_spec("Accumulator")
    atoms = parse_atoms(spec, "increase", "read", ["v1 = 0"])
    result = synthesize(spec, "increase", "read", Kind.BEFORE, atoms,
                        Scope())
    assert result.succeeded
    assert result.text == "v1 = 0"
