"""The CEGIS abduction loop: atom alphabet, lattice walk, payload
round-trips, engine caching of ABDUCTION tasks, and the synthesized
tier's runtime admission path — all on the projector-less RegisterCell
demo, the structure no earlier machinery helps."""

import pytest

from repro.abduction import (ABDUCTION_VERSION, DEMO_FAMILY, atom_pool,
                             make_demo_registry, register_demo_structure,
                             synthesis_from_payload, synthesis_payload,
                             synthesize_pair)
from repro.abduction.loop import MAX_CHECKED, MAX_WIDTH
from repro.api import Registry, Session
from repro.commutativity import Kind
from repro.engine import ResultCache, run_stability_compilation
from repro.engine.tasks import ABDUCTION
from repro.eval import Scope
from repro.stability import merge_synthesis
from repro.workloads import ThroughputHarness, WorkloadSpec

SCOPE = Scope()


@pytest.fixture()
def registry() -> Registry:
    return make_demo_registry()


def _cond(registry, m1, m2):
    return registry.condition(DEMO_FAMILY, m1, m2, Kind.BETWEEN)


# -- atom alphabet ------------------------------------------------------------

def test_atom_pool_covers_the_between_vocabulary(registry):
    spec = registry.spec(DEMO_FAMILY)
    write = spec.operations["write"]
    atoms = atom_pool(write, write)
    # Argument equality plus both observed-result links: the alphabet
    # the write;write synthesis is built from.
    assert {"v1 = v2", "v1 = r1", "v2 = r1"} <= set(atoms)
    # State-free by construction — drift cannot falsify an atom.
    assert not any("s1" in a or "s2" in a for a in atoms)
    assert len(atoms) == len(set(atoms))


def test_atom_pool_of_argless_pair_is_empty(registry):
    spec = registry.spec(DEMO_FAMILY)
    read = spec.operations["read"]
    assert atom_pool(read, read) == []


# -- the lattice walk ---------------------------------------------------------

def test_synthesize_pair_arms_abduced_conditions(registry):
    synth = synthesize_pair(registry.spec(DEMO_FAMILY),
                            _cond(registry, "write", "write"), SCOPE)
    assert synth.pair_label == "write;write"
    assert len(synth.armed) >= 1
    assert 0 < synth.checked <= MAX_CHECKED
    assert synth.rounds >= 1
    assert synth.cases > 0
    for c in synth.conditions:
        assert c.origin == "abduced"
        assert "s1" not in c.text and "s2" not in c.text
        # Conjunction width is bounded by the walk.
        assert c.text.count("&") < MAX_WIDTH
    for c in synth.armed:
        assert c.passed
    assert synth.stats() == {"checked": synth.checked,
                             "pruned": synth.pruned,
                             "refuted": synth.refuted,
                             "rounds": synth.rounds,
                             "armed": len(synth.armed)}


def test_countermodels_prune_the_frontier(registry):
    """write;write refutes the bare atoms before strengthening; at
    least one strengthened candidate must be killed by the recorded
    violating observations without a fresh sweep."""
    synth = synthesize_pair(registry.spec(DEMO_FAMILY),
                            _cond(registry, "write", "write"), SCOPE)
    assert synth.pruned >= 1


def test_synthesis_payload_roundtrip(registry):
    synth = synthesize_pair(registry.spec(DEMO_FAMILY),
                            _cond(registry, "write", "read"), SCOPE)
    rebuilt = synthesis_from_payload(synthesis_payload(synth))
    assert rebuilt.conditions == synth.conditions
    assert rebuilt.stats() == synth.stats()
    assert rebuilt.cases == synth.cases


def test_merge_synthesis_promotes_and_dedupes(registry):
    session = Session(registry=registry, cache=False)
    report = session.compile_stable([DEMO_FAMILY])[DEMO_FAMILY]
    fragile = {p.pair_label: p for p in report.pairs}["write;write"]
    assert fragile.verdict == "fragile"  # nothing pre-abduction helps
    synth = synthesize_pair(registry.spec(DEMO_FAMILY),
                            _cond(registry, "write", "write"), SCOPE)
    merged = merge_synthesis(fragile, synth)
    assert merged.verdict == "synthesized"
    assert merged.stable_text is not None
    # Merging the same synthesis again adds nothing: every text is
    # already known, so the pool must not grow.
    again = merge_synthesis(merged, synth)
    assert again.candidates == merged.candidates
    assert again.stable_text == merged.stable_text


def test_abduction_version_gates_the_task_key(registry):
    """The version is baked into every ABDUCTION task key; a walk or
    alphabet change must bump it to retire cached syntheses."""
    from repro.engine.fingerprint import abduction_fingerprint
    assert ABDUCTION_VERSION == 1
    conditions = [c for c in registry.conditions(DEMO_FAMILY)
                  if c.kind is Kind.BETWEEN]
    fingerprint = abduction_fingerprint(conditions, has_router=False)
    assert fingerprint["abduction_version"] == ABDUCTION_VERSION
    # The bounded layers ride along: a compiler or prover bump retires
    # cached syntheses too.
    assert "compiler_version" in fingerprint
    assert "prover" in fingerprint


# -- engine integration: cached ABDUCTION tasks -------------------------------

def test_abduction_tasks_are_served_from_cache(tmp_path, registry):
    cache = ResultCache(tmp_path / "cache")
    cold = run_stability_compilation(SCOPE, names=[DEMO_FAMILY],
                                     registry=registry, cache=cache,
                                     prover=True, abduce=True)
    warm = run_stability_compilation(SCOPE, names=[DEMO_FAMILY],
                                     registry=make_demo_registry(),
                                     cache=cache, prover=True,
                                     abduce=True)
    for report in (cold[DEMO_FAMILY], warm[DEMO_FAMILY]):
        assert report.synthesized_count > 0
        assert any(t.kind == ABDUCTION for t in report.task_timings)
    assert not any(t.cached
                   for t in cold[DEMO_FAMILY].task_timings)
    assert all(t.cached for t in warm[DEMO_FAMILY].task_timings)
    # Warm syntheses are byte-identical to the cold run's.
    assert [(p.m1, p.m2, p.verdict, p.stable_text, p.candidates,
             p.synthesis) for p in warm[DEMO_FAMILY].pairs] \
        == [(p.m1, p.m2, p.verdict, p.stable_text, p.candidates,
             p.synthesis) for p in cold[DEMO_FAMILY].pairs]


# -- runtime: the synthesized tier admits, the tier never decides -------------

HOT_WRITES = WorkloadSpec(
    name="abduction-hotkey", profile="write-heavy",
    distribution="hot-key", transactions=12, ops_per_transaction=6,
    key_space=24, value_space=3, seed=9)


def test_register_demo_structure_is_idempotent_and_runnable(registry):
    assert DEMO_FAMILY in registry.names()
    assert registry.implementation(DEMO_FAMILY) is not None
    report = Session(registry=registry, cache=False).verify(
        DEMO_FAMILY, backend="bounded")
    assert report.all_verified


def test_synthesized_guard_admits_where_the_fallback_cannot(registry):
    session = Session(registry=registry, cache=False)
    session.abduce_stable([DEMO_FAMILY])
    harness = ThroughputHarness(registry=registry)
    plain = harness.run_one(DEMO_FAMILY, HOT_WRITES, workers=1)
    armed = harness.run_one(DEMO_FAMILY, HOT_WRITES, workers=1,
                            stable=True)
    assert plain.serializable and armed.serializable
    # No router: the conservative oracle admits nothing under drift,
    # and without --abduce there is no semantic tier at all.
    assert plain.report.fallback_admits == 0
    assert plain.report.synthesized_hits == 0
    # The abduced conditions admit through the synthesized tier, and
    # only through it — stable/proved counters stay untouched.
    assert armed.report.synthesized_hits > 0
    assert armed.report.stable_hits == 0
    assert armed.report.proved_hits == 0
    assert armed.drift_fallbacks < plain.drift_fallbacks


def test_flat_and_sharded_synthesized_decisions_agree(registry):
    session = Session(registry=registry, cache=False)
    session.abduce_stable([DEMO_FAMILY])
    flat = session.run_workload(DEMO_FAMILY, HOT_WRITES, shards=1,
                                stable=True)
    sharded = session.run_workload(DEMO_FAMILY, HOT_WRITES, shards=4,
                                   stable=True)
    assert flat.commit_order == sharded.commit_order
    assert flat.aborts == sharded.aborts


def test_register_demo_structure_reuses_existing_registration():
    registry = Registry.with_builtins()
    first = register_demo_structure(registry)
    second = register_demo_structure(registry)
    assert first == second == DEMO_FAMILY
    assert registry.names().count(DEMO_FAMILY) == 1
