"""Pretty-printer tests, including the parse/pretty round-trip property."""

import pytest
from hypothesis import given, strategies as st

from repro.logic import parse_formula, pretty
from repro.logic import terms as t
from repro.logic.sorts import Sort
from repro.logic.symbols import SymbolTable

TABLE = SymbolTable(
    vars={"p": Sort.BOOL, "q": Sort.BOOL, "r": Sort.BOOL,
          "x": Sort.INT, "y": Sort.INT, "v1": Sort.OBJ, "v2": Sort.OBJ,
          "s": Sort.SEQ, "S": Sort.SET, "m": Sort.MAP, "st": Sort.STATE},
    state_fields={"contents": Sort.SET, "size": Sort.INT},
    observers={"contains": ((Sort.OBJ,), Sort.BOOL)},
    principal_field="contents",
)


@pytest.mark.parametrize("text", [
    "p & q | r",
    "p --> q --> r",
    "p <-> q",
    "~(p & q)",
    "v1 ~= v2 | v1 : S",
    "x + 1 <= y",
    "idx(ins(s, x, v1), v2) = idx(s, v2)",
    "st.contains(v1) = true",
    "EX i. 0 <= i & i < x & at(s, i) = v1",
    "ALL o::obj. o : S --> o : S Un {v1}",
    "lookup(m, v1) = null",
    "card(S) = x",
    "s[x] = v1",
])
def test_roundtrip_examples(text):
    formula = parse_formula(text, TABLE)
    assert parse_formula(pretty(formula), TABLE) == formula


# -- property-based round trip over generated formulas --------------------------

_atoms = st.sampled_from([
    "p", "q", "r", "v1 = v2", "v1 : S", "x < y", "x <= y + 1",
    "at(s, x) = v1", "idx(s, v1) = x", "st.contains(v1)",
])


@st.composite
def formulas(draw, depth=3):
    if depth == 0:
        return draw(_atoms)
    choice = draw(st.integers(0, 5))
    if choice == 0:
        return draw(_atoms)
    if choice == 1:
        return f"~({draw(formulas(depth=depth - 1))})"
    lhs = draw(formulas(depth=depth - 1))
    rhs = draw(formulas(depth=depth - 1))
    op = {2: "&", 3: "|", 4: "-->", 5: "<->"}[choice]
    return f"({lhs}) {op} ({rhs})"


@given(formulas())
def test_roundtrip_property(text):
    formula = parse_formula(text, TABLE)
    assert parse_formula(pretty(formula), TABLE) == formula


def test_pretty_neq_and_notin_sugar():
    assert pretty(parse_formula("v1 ~= v2", TABLE)) == "v1 ~= v2"
    assert pretty(parse_formula("v1 ~: S", TABLE)) == "v1 ~: S"


def test_pretty_negative_int():
    assert pretty(t.IntConst(-3)) == "-3"


def test_pretty_observer_call():
    text = pretty(parse_formula("st.contains(v1)", TABLE))
    assert text == "st.contains(v1)"
