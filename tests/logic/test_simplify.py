"""NNF and simplification tests: semantics preservation is checked by
evaluation over all small environments."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.logic import nnf, parse_formula, simplify
from repro.logic import terms as t
from repro.logic.sorts import Sort
from repro.logic.symbols import SymbolTable
from repro.eval import evaluate

TABLE = SymbolTable(vars={"p": Sort.BOOL, "q": Sort.BOOL, "r": Sort.BOOL,
                          "x": Sort.INT, "y": Sort.INT})


def f(text):
    return parse_formula(text, TABLE)


def all_bool_envs():
    for p, q, r in itertools.product((False, True), repeat=3):
        for x, y in itertools.product((0, 1), repeat=2):
            yield {"p": p, "q": q, "r": r, "x": x, "y": y}


def assert_equivalent(a, b):
    for env in all_bool_envs():
        assert evaluate(a, env) == evaluate(b, env), env


def has_inner_negation(formula):
    for node in formula.walk():
        if isinstance(node, (t.Implies, t.Iff)):
            return True
        if isinstance(node, t.Not) and not _is_atom(node.arg):
            return True
    return False


def _is_atom(node):
    return not isinstance(node, (t.Not, t.And, t.Or, t.Implies, t.Iff,
                                 t.Forall, t.Exists))


@pytest.mark.parametrize("text", [
    "~(p & q)",
    "~(p | q & r)",
    "p --> q",
    "~(p --> q)",
    "p <-> q",
    "~(p <-> q)",
    "~~p",
    "~(p --> (q <-> r))",
])
def test_nnf_equivalence_and_shape(text):
    original = f(text)
    normal = nnf(original)
    assert_equivalent(original, normal)
    assert not has_inner_negation(normal)


def test_nnf_pushes_through_quantifiers():
    table = SymbolTable(vars={"y": Sort.INT})
    q = parse_formula("~(ALL i. i < y)", table)
    normal = nnf(q)
    assert isinstance(normal, t.Exists)


@pytest.mark.parametrize("text,expected", [
    ("p & true", "p"),
    ("p | false", "p"),
    ("p & false", "false"),
    ("p | true", "true"),
    ("1 + 2 <= 3", "true"),
    ("1 = 2", "false"),
    ("p = true", "p"),
])
def test_simplify_examples(text, expected):
    assert simplify(f(text)) == f(expected)


def test_simplify_ite_constant():
    formula = t.Ite(t.TRUE, t.IntConst(1), t.IntConst(2))
    assert simplify(t.Eq(formula, t.IntConst(1))) == t.TRUE


_texts = st.sampled_from(
    ["p", "q", "r", "true", "false", "x < y", "x = y"])


@st.composite
def random_formula(draw, depth=3):
    if depth == 0:
        return draw(_texts)
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(_texts)
    if kind == 1:
        return f"~({draw(random_formula(depth=depth - 1))})"
    a = draw(random_formula(depth=depth - 1))
    b = draw(random_formula(depth=depth - 1))
    return f"({a}) {'&|'[kind % 2]} ({b})" if kind < 4 \
        else f"({a}) --> ({b})"


@given(random_formula())
def test_simplify_preserves_semantics(text):
    original = f(text)
    assert_equivalent(original, simplify(original))


@given(random_formula())
def test_nnf_preserves_semantics(text):
    original = f(text)
    assert_equivalent(original, nnf(original))
