"""Differential tests: compiled formulas agree with the interpreter on
every node type and over whole condition catalogs."""

import pytest

from repro.commutativity import all_conditions
from repro.commutativity.bounded import case_environment, enumerate_cases
from repro.eval import EvalContext, EvalError, FMap, Record, Scope, evaluate
from repro.logic import parse_term
from repro.logic.compile import compile_term
from repro.logic.sorts import Sort
from repro.logic.symbols import SymbolTable
from repro.specs import get_spec

TABLE = SymbolTable(
    vars={"p": Sort.BOOL, "x": Sort.INT, "y": Sort.INT,
          "v": Sort.OBJ, "u": Sort.OBJ, "S": Sort.SET, "m": Sort.MAP,
          "s": Sort.SEQ, "st": Sort.STATE},
    state_fields={"contents": Sort.SET, "size": Sort.INT},
    observers={"contains": ((Sort.OBJ,), Sort.BOOL)},
    principal_field="contents",
)

ENV = {
    "p": True, "x": 1, "y": 3, "v": "a", "u": "b",
    "S": frozenset({"a"}), "m": FMap({"a": "b"}), "s": ("a", "b"),
    "st": Record(contents=frozenset({"a"}), size=1),
}

EXPRESSIONS = [
    "p & x < y | ~p",
    "x + y - 1",
    "-x",
    "v : S Un {u}",
    "card(S - {v})",
    "lookup(m, v)",
    "haskey(m, u)",
    "mput(m, u, v)",
    "mdel(m, v)",
    "keys(m)",
    "msize(m)",
    "len(s) + idx(s, u) + lidx(s, v)",
    "at(ins(s, 0, u), 1)",
    "del_(s, 1)",
    "upd(s, 0, u)",
    "has(s, v)",
    "st.size",
    "v : st",
    "EX i. 0 <= i & i < len(s) & at(s, i) = u",
    "ALL i. (0 <= i & i < len(s)) --> has(s, at(s, i))",
    "EX o::obj. o : S",
    "p <-> x = 1",
    "x < y --> p",
]


@pytest.mark.parametrize("text", EXPRESSIONS)
def test_compiled_matches_interpreter(text):
    term = parse_term(text, TABLE)
    compiled = compile_term(term)
    assert compiled(ENV) == evaluate(term, ENV)


def test_compiled_observer_dispatch():
    spec = get_spec("Set")
    ctx = EvalContext(observe=spec.observe)
    term = parse_term("st.contains(v)", TABLE)
    assert compile_term(term, ctx)(ENV) is True


def test_compiled_partiality_matches():
    term = parse_term("at(s, 9)", TABLE)
    with pytest.raises(EvalError):
        compile_term(term)(ENV)


def test_compiled_unbound_variable():
    term = parse_term("x + 1", TABLE)
    with pytest.raises(EvalError):
        compile_term(term)({})


@pytest.mark.parametrize("family", ["Accumulator", "Set", "Map"])
def test_compiled_agrees_over_catalog(family):
    """Differential sweep: every condition formula, every case in a small
    scope, compiled == interpreted."""
    spec = get_spec(family)
    scope = Scope(objects=("a", "b"), values=("x", "y"), max_seq_len=2)
    ctx = EvalContext(observe=spec.observe)
    for cond in all_conditions()[family][::3]:  # one kind per pair
        compiled = compile_term(cond.formula, ctx)
        for case in enumerate_cases(spec, cond.op1, cond.op2, scope):
            env = case_environment(cond.op1, cond.op2, case)
            assert compiled(env) == evaluate(cond.formula, env, ctx), \
                (cond, env)
