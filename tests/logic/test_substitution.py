"""Substitution and transform tests."""

import pytest

from repro.logic import parse_formula, substitute
from repro.logic import terms as t
from repro.logic.sorts import Sort
from repro.logic.substitution import transform
from repro.logic.symbols import SymbolTable

TABLE = SymbolTable(vars={"x": Sort.INT, "y": Sort.INT, "z": Sort.INT,
                          "v": Sort.OBJ, "s": Sort.SEQ})


def f(text):
    return parse_formula(text, TABLE)


def test_substitute_variable():
    g = substitute(f("x < y"), {"x": t.IntConst(3)})
    assert g == f("3 < y")


def test_substitute_leaves_others():
    g = substitute(f("x < y"), {"z": t.IntConst(3)})
    assert g == f("x < y")


def test_substitute_under_binder_shadowed():
    formula = f("EX x. x < y")
    g = substitute(formula, {"x": t.IntConst(3)})
    assert g == formula  # bound x untouched


def test_substitute_body_of_binder():
    g = substitute(f("EX i. i < y"), {"y": t.IntConst(7)})
    assert g == f("EX i. i < 7")


def test_capture_detected():
    with pytest.raises(ValueError):
        substitute(f("EX i. i < y"), {"y": t.Var("i", Sort.INT)})


def test_sort_mismatch_rejected():
    with pytest.raises(ValueError):
        substitute(f("x < y"), {"x": t.Var("v", Sort.OBJ)})


def test_substitute_term_for_var():
    g = substitute(f("x < y"), {"x": t.Add((t.Var("y", Sort.INT),
                                            t.IntConst(1)))})
    assert g == f("y + 1 < y")


def test_transform_bottom_up():
    # Replace every IntConst n with n + 1.
    def bump(node):
        if isinstance(node, t.IntConst):
            return t.IntConst(node.value + 1)
        return None

    g = transform(f("1 < 2"), bump)
    assert g == f("2 < 3")


def test_transform_identity_returns_same_tree():
    formula = f("EX i. i < y & x < i")
    assert transform(formula, lambda _: None) == formula
