"""AST construction and sort-checking tests."""

import pytest

from repro.logic import terms as t
from repro.logic.free_vars import free_vars
from repro.logic.sorts import Sort, SortError


def test_sorts_of_atoms():
    assert t.TRUE.sort is Sort.BOOL
    assert t.IntConst(3).sort is Sort.INT
    assert t.NULL.sort is Sort.OBJ
    assert t.Var("s", Sort.SEQ).sort is Sort.SEQ


def test_and_requires_bool():
    with pytest.raises(SortError):
        t.And((t.IntConst(1), t.TRUE))


def test_eq_requires_matching_sorts():
    with pytest.raises(SortError):
        t.Eq(t.IntConst(1), t.NULL)


def test_ite_branch_sorts_must_match():
    with pytest.raises(SortError):
        t.Ite(t.TRUE, t.IntConst(1), t.NULL)


def test_member_requires_obj_and_set():
    with pytest.raises(SortError):
        t.Member(t.IntConst(1), t.Var("S", Sort.SET))


def test_seq_ops_sorts():
    s = t.Var("s", Sort.SEQ)
    i = t.Var("i", Sort.INT)
    v = t.Var("v", Sort.OBJ)
    assert t.SeqInsert(s, i, v).sort is Sort.SEQ
    assert t.SeqIndexOf(s, v).sort is Sort.INT
    assert t.SeqGet(s, i).sort is Sort.OBJ
    with pytest.raises(SortError):
        t.SeqGet(s, v)


def test_smart_conj_flattens_and_units():
    p = t.Var("p", Sort.BOOL)
    q = t.Var("q", Sort.BOOL)
    assert t.conj() == t.TRUE
    assert t.conj(p) == p
    assert t.conj(p, t.TRUE, q) == t.And((p, q))
    assert t.conj(p, t.FALSE) == t.FALSE
    assert t.conj(t.conj(p, q), p) == t.And((p, q, p))


def test_smart_disj():
    p = t.Var("p", Sort.BOOL)
    assert t.disj() == t.FALSE
    assert t.disj(p, t.TRUE) == t.TRUE
    assert t.disj(p, t.FALSE) == p


def test_smart_neg_involution():
    p = t.Var("p", Sort.BOOL)
    assert t.neg(t.neg(p)) == p
    assert t.neg(t.TRUE) == t.FALSE


def test_walk_preorder():
    p = t.Var("p", Sort.BOOL)
    q = t.Var("q", Sort.BOOL)
    formula = t.And((p, t.Not(q)))
    nodes = list(formula.walk())
    assert nodes[0] is formula
    assert p in nodes and q in nodes


def test_nodes_hashable_and_equal_by_structure():
    a = t.And((t.Var("p", Sort.BOOL), t.TRUE))
    b = t.And((t.Var("p", Sort.BOOL), t.TRUE))
    assert a == b
    assert hash(a) == hash(b)


def test_free_vars_basic():
    p = t.Var("p", Sort.BOOL)
    assert free_vars(p) == {"p"}


def test_free_vars_binder():
    i = t.Var("i", Sort.INT)
    y = t.Var("y", Sort.INT)
    formula = t.Exists(i, t.Lt(i, y))
    assert free_vars(formula) == {"y"}


def test_free_vars_nested_shadowing():
    i = t.Var("i", Sort.INT)
    inner = t.Exists(i, t.Lt(i, i))
    outer = t.And((t.Lt(t.Var("i", Sort.INT), t.IntConst(3)), inner))
    assert free_vars(outer) == {"i"}
