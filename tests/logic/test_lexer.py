"""Lexer unit tests."""

import pytest

from repro.logic.lexer import LexError, Token, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def test_symbols_longest_match():
    assert kinds("--> <-> ~= ~: <= >=")[:-1] == [
        "ARROW", "IFF", "NEQ", "NOTIN", "LE", "GE"]


def test_single_char_symbols():
    assert kinds("( ) [ ] { } , . | & ~ = < > + - :")[:-1] == [
        "LPAREN", "RPAREN", "LBRACK", "RBRACK", "LBRACE", "RBRACE",
        "COMMA", "DOT", "OR", "AND", "NOT", "EQ", "LT", "GT", "PLUS",
        "MINUS", "IN"]


def test_keywords_and_identifiers():
    tokens = tokenize("true false null ALL EX Un foo v1 _x")
    assert [t.kind for t in tokens][:-1] == [
        "TRUE", "FALSE", "NULL", "ALL", "EX", "UN", "IDENT", "IDENT",
        "IDENT"]


def test_integers():
    tokens = tokenize("0 42 1234")
    assert [(t.kind, t.text) for t in tokens][:-1] == [
        ("INT", "0"), ("INT", "42"), ("INT", "1234")]


def test_negative_number_is_minus_then_int():
    assert kinds("-5")[:-1] == ["MINUS", "INT"]


def test_positions_recorded():
    tokens = tokenize("a = b")
    assert [t.pos for t in tokens] == [0, 2, 4, 5]


def test_eof_always_last():
    assert tokenize("")[-1] == Token("EOF", "", 0)
    assert tokenize("x")[-1].kind == "EOF"


def test_whitespace_ignored():
    assert kinds("  a \t b \n c  ")[:-1] == ["IDENT"] * 3


def test_method_call_shape():
    assert kinds("s1.contains(v1)")[:-1] == [
        "IDENT", "DOT", "IDENT", "LPAREN", "IDENT", "RPAREN"]


def test_double_colon():
    assert kinds("x::obj")[:-1] == ["IDENT", "DCOLON", "IDENT"]


def test_unknown_character_raises():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_tilde_disambiguation():
    # ~ followed by = is NEQ, by : is NOTIN, alone is NOT.
    assert kinds("~a")[:-1] == ["NOT", "IDENT"]
    assert kinds("a ~= b")[1] == "NEQ"
    assert kinds("a ~: b")[1] == "NOTIN"
