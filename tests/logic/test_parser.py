"""Parser unit tests: precedence, sort checking, elaboration."""

import pytest

from repro.logic import ParseError, parse_formula, parse_term
from repro.logic import terms as t
from repro.logic.sorts import Sort
from repro.logic.symbols import SymbolTable


@pytest.fixture
def table():
    return SymbolTable(
        vars={"p": Sort.BOOL, "q": Sort.BOOL, "r": Sort.BOOL,
              "x": Sort.INT, "y": Sort.INT,
              "v1": Sort.OBJ, "v2": Sort.OBJ,
              "s": Sort.SEQ, "S": Sort.SET, "m": Sort.MAP,
              "st": Sort.STATE},
        state_fields={"contents": Sort.SET, "size": Sort.INT},
        observers={"contains": ((Sort.OBJ,), Sort.BOOL),
                   "size": ((), Sort.INT)},
        principal_field="contents",
    )


def test_precedence_and_over_or(table):
    f = parse_formula("p | q & r", table)
    assert isinstance(f, t.Or)
    assert isinstance(f.args[1], t.And)


def test_implication_right_associative(table):
    f = parse_formula("p --> q --> r", table)
    assert isinstance(f, t.Implies)
    assert isinstance(f.rhs, t.Implies)


def test_iff_loosest(table):
    f = parse_formula("p --> q <-> r", table)
    assert isinstance(f, t.Iff)


def test_negation_binds_tighter_than_and(table):
    f = parse_formula("~p & q", table)
    assert isinstance(f, t.And)
    assert isinstance(f.args[0], t.Not)


def test_neq_desugars_to_not_eq(table):
    f = parse_formula("v1 ~= v2", table)
    assert isinstance(f, t.Not)
    assert isinstance(f.arg, t.Eq)


def test_member_and_notin(table):
    f = parse_formula("v1 : S", table)
    assert isinstance(f, t.Member)
    g = parse_formula("v1 ~: S", table)
    assert isinstance(g, t.Not)
    assert isinstance(g.arg, t.Member)


def test_state_coercion_to_principal_field(table):
    f = parse_formula("v1 : st", table)
    assert isinstance(f, t.Member)
    assert isinstance(f.set_, t.Field)
    assert f.set_.name == "contents"


def test_field_access(table):
    f = parse_term("st.size", table)
    assert isinstance(f, t.Field)
    assert f.sort is Sort.INT


def test_observer_call(table):
    f = parse_formula("st.contains(v1)", table)
    assert isinstance(f, t.ObserverCall)
    assert f.method == "contains"
    assert f.sort is Sort.BOOL


def test_observer_arity_checked(table):
    with pytest.raises(ParseError):
        parse_formula("st.contains(v1, v2)", table)


def test_unknown_observer(table):
    with pytest.raises(ParseError):
        parse_formula("st.frobnicate(v1)", table)


def test_sequence_indexing(table):
    f = parse_term("s[x]", table)
    assert isinstance(f, t.SeqGet)


def test_builtin_functions(table):
    f = parse_term("idx(ins(s, x, v1), v2)", table)
    assert isinstance(f, t.SeqIndexOf)
    assert isinstance(f.seq, t.SeqInsert)


def test_builtin_arity_checked(table):
    with pytest.raises(ParseError):
        parse_term("ins(s, x)", table)


def test_arithmetic(table):
    f = parse_formula("x + 1 <= y - 2", table)
    assert isinstance(f, t.Le)
    assert isinstance(f.lhs, t.Add)
    assert isinstance(f.rhs, t.Sub)


def test_unary_minus_constant_folds(table):
    f = parse_term("-5", table)
    assert f == t.IntConst(-5)


def test_gt_ge_normalize_to_lt_le(table):
    f = parse_formula("x > y", table)
    assert isinstance(f, t.Lt)
    assert f.lhs == t.Var("y", Sort.INT)
    g = parse_formula("x >= y", table)
    assert isinstance(g, t.Le)


def test_set_literal_and_union(table):
    f = parse_term("S Un {v1, v2}", table)
    assert isinstance(f, t.Union)
    assert isinstance(f.rhs, t.FiniteSet)


def test_set_difference(table):
    f = parse_term("S - {v1}", table)
    assert isinstance(f, t.Diff)


def test_quantifier_defaults_to_int(table):
    f = parse_formula("EX i. 0 <= i & i < x", table)
    assert isinstance(f, t.Exists)
    assert f.var.var_sort is Sort.INT


def test_quantifier_obj_annotation(table):
    f = parse_formula("ALL o::obj. o : S --> o : S", table)
    assert isinstance(f, t.Forall)
    assert f.var.var_sort is Sort.OBJ


def test_quantified_var_shadows(table):
    # x is INT in the table; binder x::obj shadows it inside the body.
    f = parse_formula("EX x::obj. x = v1", table)
    assert isinstance(f, t.Exists)


def test_sort_mismatch_rejected(table):
    with pytest.raises(ParseError):
        parse_formula("x = v1", table)


def test_unknown_identifier(table):
    with pytest.raises(ParseError):
        parse_formula("zzz = x", table)


def test_null_literal(table):
    f = parse_formula("v1 ~= null", table)
    assert isinstance(f, t.Not)
    assert f.arg.rhs == t.NULL


def test_formula_must_be_boolean(table):
    with pytest.raises(ParseError):
        parse_formula("x + 1", table)


def test_trailing_garbage_rejected(table):
    with pytest.raises(ParseError):
        parse_formula("p | q q", table)


def test_bool_eq_true(table):
    f = parse_formula("st.contains(v1) = true", table)
    assert isinstance(f, t.Eq)
