"""Shared helpers for the drift-stability tests: the six built-ins plus
a fully registered *and runnable* custom Register (spec, conditions,
inverse, implementation, router)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "api"))

from register_fixture import make_register_registry  # noqa: E402

from repro.eval import Record  # noqa: E402
from repro.runtime.sharding import single_region_router  # noqa: E402


class ConcreteRegister:
    """A concrete single-cell register matching the fixture spec."""

    def __init__(self) -> None:
        self._value = "init"

    def write(self, v):
        old = self._value
        self._value = v
        return old

    def read(self):
        return self._value

    def abstract_state(self) -> Record:
        return Record(value=self._value)


def make_runnable_register_registry():
    """Builtins + Register with everything the executor needs."""
    registry = make_register_registry()
    registry.register_implementation("Register", ConcreteRegister)
    # The trivial router: one region.  Its presence both exercises the
    # custom-structure footprint path (argument/result atoms are only
    # generated for routed families) and keeps the oracle honest (a
    # single region never declares any pair disjoint).
    registry.register_shard_router("Register", single_region_router)
    return registry


#: Structures the runtime property tests sweep: the paper's six plus
#: the custom Register.
ALL_STRUCTURES = ("Accumulator", "ListSet", "HashSet", "AssociationList",
                  "HashTable", "ArrayList", "Register")
