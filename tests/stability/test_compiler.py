"""Stability-compiler tests: atom projection, footprint candidates, the
quantified re-verifier's verdicts on the real catalogs, and the
scope-adequacy behaviour the module documents."""

import pytest

from repro.api import DEFAULT_REGISTRY as REGISTRY
from repro.commutativity import Kind
from repro.eval import Scope, paper_scope
from repro.logic import parse_formula
from repro.stability import (StableCondition, candidate_texts, check_pair,
                             compile_pair, state_free_projection)
from repro.stability.footprint import (disjointness_atoms, order_atoms,
                                       reanchored_condition,
                                       result_link_atoms)
from repro.stability.projector import split_disjuncts


def _cond(name, m1, m2):
    return REGISTRY.condition(name, m1, m2, Kind.BETWEEN)


def _spec(name):
    return REGISTRY.spec(name)


SCOPE = paper_scope()


# -- projector ----------------------------------------------------------------

def test_split_disjuncts_separates_state_atoms():
    cond = _cond("HashSet", "add_", "contains")  # v1 ~= v2 | v1 : s1
    stable, fragile = split_disjuncts(cond.dynamic_formula)
    assert len(stable) == 1 and len(fragile) == 1


def test_state_free_projection_of_set_condition():
    cond = _cond("HashSet", "add_", "contains")
    assert state_free_projection(cond) == "v1 ~= v2"


def test_projection_is_none_for_conjunctions():
    # ArrayList conditions are conjunction-shaped: dropping conjuncts
    # would weaken unsoundly, so there is nothing to project.
    assert state_free_projection(_cond("ArrayList", "add_at", "set")) is None


def test_projection_is_none_when_already_state_free():
    assert state_free_projection(_cond("HashSet", "contains", "add")) is None


# -- footprint candidates -----------------------------------------------------

def test_footprint_atoms_for_keyed_pair():
    spec = _spec("HashTable")
    op1, op2 = spec.operations["put_"], spec.operations["get"]
    assert disjointness_atoms(op1, op2) == ["k1 ~= k2"]
    assert order_atoms(op1, op2) == []  # keys are not integers


def test_footprint_atoms_for_indexed_pair():
    spec = _spec("ArrayList")
    op1, op2 = spec.operations["add_at"], spec.operations["get"]
    assert "i2 < i1" in order_atoms(op1, op2)
    assert "i1 < i2" in order_atoms(op1, op2)


def test_result_link_atoms_use_r1():
    spec = _spec("ArrayList")
    atoms = result_link_atoms(spec.operations["get"],
                              spec.operations["set"])
    assert "v2 = r1" in atoms
    spec_set = _spec("HashSet")
    atoms = result_link_atoms(spec_set.operations["contains"],
                              spec_set.operations["add"])
    assert "r1" in atoms and "~r1" in atoms


def test_reanchored_condition_rewrites_s1_to_s2():
    text = reanchored_condition(_cond("HashSet", "add_", "contains"))
    assert "s2" in text and "s1" not in text
    # State-free conditions have nothing to re-anchor.
    assert reanchored_condition(_cond("HashSet", "contains", "add")) is None


def test_candidate_texts_prefers_projection_first():
    texts = candidate_texts(_cond("HashSet", "add_", "contains"),
                            has_router=True)
    assert texts[0] == "v1 ~= v2"
    assert len(texts) == len(set(texts))


# -- verdicts on the real catalogs --------------------------------------------

def test_state_free_condition_is_verbatim_stable():
    pair = compile_pair(_spec("HashSet"),
                        _cond("HashSet", "contains", "add"), SCOPE,
                        has_router=True)
    assert pair.verdict == "stable" and pair.stable_text is None


def test_set_discard_pair_gets_disequality_weakening():
    pair = compile_pair(_spec("HashSet"),
                        _cond("HashSet", "add_", "contains"), SCOPE,
                        has_router=True)
    assert pair.verdict == "weakened"
    assert "v1 ~= v2" in pair.stable_text


def test_map_discard_pair_gets_key_weakening():
    pair = compile_pair(_spec("HashTable"),
                        _cond("HashTable", "put_", "get"), SCOPE,
                        has_router=True)
    assert pair.verdict == "weakened"
    assert "k1 ~= k2" in pair.stable_text


def test_arraylist_shift_read_pair_keeps_lower_indices():
    pair = compile_pair(_spec("ArrayList"),
                        _cond("ArrayList", "add_at", "get"), SCOPE,
                        has_router=True)
    assert pair.verdict == "weakened"
    assert "i2 < i1" in pair.stable_text
    # The opposite order would read a shifted slot: it must not survive.
    assert "i1 < i2" not in pair.stable_text


def test_arraylist_double_insert_stays_fragile():
    # Two inserts reframe each other's indices in every state: no
    # argument relation can certify them under drift.
    pair = compile_pair(_spec("ArrayList"),
                        _cond("ArrayList", "add_at", "add_at"), SCOPE,
                        has_router=True)
    assert pair.verdict == "fragile" and pair.stable_text is None
    assert all(not c.passed for c in pair.candidates)


def test_size_pairs_stay_fragile():
    pair = compile_pair(_spec("HashTable"),
                        _cond("HashTable", "size", "put"), SCOPE,
                        has_router=True)
    assert pair.verdict == "fragile"


def test_reanchored_survivors_are_reported_but_never_armed():
    # The s2-rewritten form of set_;set_ passes the bounded sweep but
    # must not be compiled into the armed condition: at run time it
    # would be evaluated against preloaded states far outside the
    # scope, where its truth is value coincidence (the PR 4 bug shape).
    pair = compile_pair(_spec("ArrayList"),
                        _cond("ArrayList", "set_", "set_"), SCOPE,
                        has_router=True)
    state_reading = [c for c in pair.candidates if "s2" in c.text]
    assert state_reading, "expected a re-anchored candidate"
    assert all(not c.armed for c in state_reading)
    assert any(c.passed for c in state_reading)
    assert pair.stable_text is not None
    assert "s2" not in pair.stable_text


def test_compile_pair_rejects_non_between_conditions():
    with pytest.raises(ValueError):
        compile_pair(_spec("HashSet"),
                     REGISTRY.condition("HashSet", "add_", "contains",
                                        Kind.BEFORE),
                     SCOPE, has_router=True)


# -- scope adequacy -----------------------------------------------------------

def test_smoke_scope_cannot_refute_remove_get_aliasing():
    """At ``max_seq_len=2`` no list can run ``remove_at(i1); get(i2)``
    with ``i1 < i2``, so the unsound ``i1 ~= i2`` weakening survives —
    the documented reason stability entry points default to the full
    paper scope, where it is refuted."""
    spec = _spec("ArrayList")
    cond = _cond("ArrayList", "remove_at", "get")
    smoke = compile_pair(spec, cond, Scope().smaller(), has_router=True)
    full = compile_pair(spec, cond, SCOPE, has_router=True)
    assert "i1 ~= i2" in smoke.stable_text
    assert "i1 ~= i2" not in full.stable_text
    assert "i2 < i1" in full.stable_text


# -- candidate hygiene --------------------------------------------------------

def test_check_pair_drops_malformed_and_out_of_vocabulary_candidates():
    spec = _spec("HashSet")
    cond = _cond("HashSet", "add_", "contains")
    pair = check_pair(spec, cond,
                      ["this is ( not a formula", "r2 = true",
                       "v1 ~= v2"], SCOPE)
    assert [c.text for c in pair.candidates] == ["v1 ~= v2"]


def test_vacuous_candidates_never_pass():
    spec = _spec("HashSet")
    pair = check_pair(spec, _cond("HashSet", "add_", "contains"),
                      ["false"], SCOPE)
    assert pair.verdict == "fragile"


# -- the artifact -------------------------------------------------------------

def test_stable_condition_parses_against_the_pair_vocabulary():
    from repro.commutativity.conditions import condition_symbols
    spec = _spec("HashTable")
    stable = StableCondition(family="Map", m1="put_", m2="get",
                             text="k1 ~= k2", spec=spec)
    assert stable.pair_label == "put_;get"
    table = condition_symbols(spec, spec.operations["put_"],
                              spec.operations["get"])
    assert stable.dynamic_formula == parse_formula("k1 ~= k2", table)


def test_stable_condition_requires_spec():
    with pytest.raises(ValueError):
        StableCondition(family="Map", m1="put_", m2="get",
                        text="k1 ~= k2")
