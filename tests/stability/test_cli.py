"""CLI surface of the stability subsystem: the ``stability``
subcommand, ``run --stable``, and the ``bench --suite runtime`` gate
and seed-matrix sections."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Every invocation compiles through the engine cache in its own
    directory, keeping the repo root clean."""
    monkeypatch.chdir(tmp_path)


def test_stability_command_prints_verdicts(capsys):
    code = main(["stability", "--name", "HashSet", "--max-seq-len", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "weakened" in out and "fragile" in out and "stable" in out
    assert "v1 ~= v2" in out
    assert "36 between conditions" in out


def test_stability_command_is_cache_warm_on_rerun(capsys):
    assert main(["stability", "--name", "HashSet",
                 "--max-seq-len", "2"]) == 0
    capsys.readouterr()
    assert main(["stability", "--name", "HashSet",
                 "--max-seq-len", "2"]) == 0
    assert "groups cached" in capsys.readouterr().out


def test_run_stable_prints_drift_admission_table(capsys):
    code = main(["run", "--name", "HashTable", "--policy",
                 "commutativity", "--profile", "write-heavy",
                 "--distribution", "hot-key", "--txns", "6", "--ops",
                 "5", "--preload", "12", "--seed", "5", "--stable"])
    assert code == 0
    out = capsys.readouterr().out
    assert "drift checks" in out and "stable hits" in out


def test_bench_runtime_stable_gate(tmp_path, capsys):
    output = tmp_path / "BENCH_runtime.json"
    code = main(["bench", "--suite", "runtime", "--stable",
                 "--output", str(output)])
    assert code == 0
    data = json.loads(output.read_text())
    section = data["stability"]
    assert set(section["structures"]) == {"ArrayList", "HashTable"}
    for entry in section["structures"].values():
        assert entry["stable_hits"] > 0
        assert entry["stable_fallbacks"] < entry["plain_fallbacks"]
    assert section["compiled"]["ArrayList"]["weakened"] > 0
    out = capsys.readouterr().out
    assert "bench: stability ArrayList" in out


def test_bench_runtime_seed_matrix(tmp_path, capsys):
    output = tmp_path / "BENCH_runtime.json"
    code = main(["bench", "--suite", "runtime", "--seeds", "2",
                 "--output", str(output)])
    assert code == 0
    data = json.loads(output.read_text())
    section = data["seed_matrix"]
    assert section["seeds"] == 2
    cell = section["structures"]["HashSet"]["mixed-uniform"]["commutativity"]
    assert len(cell["ops_per_second"]) == 2
    assert cell["ops_per_second_p50"] <= cell["ops_per_second_p95"]
    assert cell["aborts_p50"] <= cell["aborts_p95"]
    out = capsys.readouterr().out
    assert "ops/s p50" in out and "aborts p95" in out
