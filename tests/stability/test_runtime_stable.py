"""Drift-stable admission at run time: the gatekeeper's stable path,
registry/session plumbing, and the acceptance properties — on
write-heavy hot-key *preloaded* workloads ``--stable`` strictly reduces
conservative fallbacks while sharded decisions remain identical to the
flat log and every execution stays identical to its serial replay,
across all six built-ins and a custom structure."""

import pytest
from hypothesis import given, settings, strategies as st

from stability_fixture import ALL_STRUCTURES

from repro.api import DuplicateNameError, Registry
from repro.eval import Record
from repro.runtime import Gatekeeper, LoggedOperation, conflict_manager
from repro.stability import StableCondition
from repro.workloads import ThroughputHarness, WorkloadSpec

#: The acceptance workload shape: write-heavy hot-key traffic over a
#: preloaded structure (deep enough that admissions outlive their
#: verified environment).
GATE = WorkloadSpec(name="stability-gate", profile="write-heavy",
                    distribution="hot-key", transactions=12,
                    ops_per_transaction=6, key_space=24, value_space=3,
                    preload=20, seed=5)

#: A lighter preloaded mix for the per-structure property sweep.
SWEEP = WorkloadSpec(name="stability-sweep", profile="mixed",
                     distribution="hot-key", transactions=6,
                     ops_per_transaction=4, key_space=12, value_space=3,
                     preload=10, seed=0)


# -- gatekeeper stable path ---------------------------------------------------

def _drifted_map_states():
    from repro.eval.values import FMap
    before = Record(contents=FMap({}), size=0)
    after = Record(contents=FMap({"k1": "x"}), size=1)
    drifted = Record(contents=FMap({"k1": "x", "k9": "y"}), size=2)
    return before, after, drifted


def _map_registry_with_stable() -> Registry:
    registry = Registry.with_builtins()
    spec = registry.spec("HashTable")
    registry.register_stable_conditions(
        "HashTable", (StableCondition(family="Map", m1="put_", m2="get",
                                      text="k1 ~= k2", spec=spec),))
    return registry


def test_stable_condition_admits_drifted_disjoint_pair():
    registry = _map_registry_with_stable()
    before, after, drifted = _drifted_map_states()
    for stable in (False, True):
        gk = Gatekeeper("HashTable", registry=registry, stable=stable)
        gk.record(LoggedOperation(txn_id=1, op_name="put_",
                                  args=("k1", "x"), result=None,
                                  before=before, after=after))
        assert gk.admits(2, "get", ("k2",), drifted)
        if stable:
            assert gk.stable_hits == 1 and gk.fallbacks == 0
        else:
            # The plain drift guard resolves the same pair through the
            # conservative router oracle.
            assert gk.stable_hits == 0
            assert gk.fallbacks == 1 and gk.fallback_admits == 1


def test_stable_condition_false_falls_back_conservatively():
    registry = _map_registry_with_stable()
    before, after, drifted = _drifted_map_states()
    gk = Gatekeeper("HashTable", registry=registry, stable=True)
    gk.record(LoggedOperation(txn_id=1, op_name="put_", args=("k1", "x"),
                              result=None, before=before, after=after))
    # Same key: the weakening is false, the router sees one region.
    assert not gk.admits(2, "get", ("k1",), drifted)
    assert gk.stable_hits == 0 and gk.fallbacks == 1


def test_stable_without_compiled_conditions_raises():
    registry = Registry.with_builtins()
    with pytest.raises(ValueError, match="compile_stable"):
        Gatekeeper("HashTable", registry=registry, stable=True)
    with pytest.raises(ValueError):
        conflict_manager("HashTable", shards=4, registry=registry,
                         stable=True)


def test_register_stable_conditions_guards_duplicates():
    registry = _map_registry_with_stable()
    spec = registry.spec("HashTable")
    conds = (StableCondition(family="Map", m1="put_", m2="get",
                             text="k1 ~= k2", spec=spec),)
    with pytest.raises(DuplicateNameError):
        registry.register_stable_conditions("HashTable", conds)
    registry.register_stable_conditions("HashTable", conds, replace=True)
    assert len(registry.stable_conditions("HashTable")) == 1


# -- session plumbing ---------------------------------------------------------

def test_compile_stable_registers_on_the_session_registry(stable_session):
    registry = stable_session.registry
    for name in ALL_STRUCTURES:
        assert registry.has_stable_conditions(name), name
    # Weakened pairs exist exactly where the reports say they do.
    assert any(c.m1 == "put_" and c.m2 == "get"
               for c in registry.stable_conditions("HashTable"))
    assert any("i2 < i1" in c.text
               for c in registry.stable_conditions("ArrayList"))
    # The custom Register earns its observer-pinned weakening.
    assert any(c.text == "v2 = r1"
               for c in registry.stable_conditions("Register"))


def test_run_workload_accepts_stable(stable_session):
    report = stable_session.run_workload("HashTable", SWEEP, stable=True)
    assert report.stable and report.serializable


# -- acceptance: the drift-admission gate ------------------------------------

@pytest.mark.parametrize("structure", ("ArrayList", "HashTable"))
@pytest.mark.parametrize("shards", (1, 4))
def test_stable_strictly_reduces_conservative_fallbacks(
        stable_session, structure, shards):
    harness = ThroughputHarness(registry=stable_session.registry)
    plain = harness.run_one(structure, GATE, workers=1, shards=shards)
    stable = harness.run_one(structure, GATE, workers=1, shards=shards,
                             stable=True)
    assert plain.serializable and stable.serializable
    assert stable.stable_hits > 0
    assert stable.drift_fallbacks < plain.drift_fallbacks
    # Every drifted check the stable condition certified skipped the
    # oracle: hits + fallbacks account for all drift-guard traffic.
    assert stable.stable_hits + stable.drift_fallbacks \
        == stable.drift_checks


@pytest.mark.parametrize("structure", ALL_STRUCTURES)
def test_sweep_flat_and_sharded_stable_decisions_agree(stable_session,
                                                       structure):
    harness = ThroughputHarness(registry=stable_session.registry)
    flat = harness.run_one(structure, SWEEP, workers=1, shards=1,
                           stable=True)
    sharded = harness.run_one(structure, SWEEP, workers=1, shards=4,
                              stable=True)
    assert flat.serializable and sharded.serializable
    assert flat.commits == sharded.commits
    assert flat.aborts == sharded.aborts
    assert flat.report.commit_order == sharded.report.commit_order
    assert flat.report.final_state == sharded.report.final_state


# -- acceptance: property-tested serializability under drift ------------------

@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), shards=st.sampled_from((1, 4)),
       structure=st.sampled_from(ALL_STRUCTURES))
def test_stable_admission_property(stable_session, structure, seed,
                                   shards):
    """Whatever the structure, seed, and shard count, stable admission
    keeps the committed execution identical to its serial replay."""
    harness = ThroughputHarness(registry=stable_session.registry)
    run = harness.run_one(structure, SWEEP.with_(seed=seed), workers=1,
                          shards=shards, stable=True)
    assert run.commits == SWEEP.transactions
    assert run.serializable, run.summary()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000))
def test_stable_admission_multi_worker_property(stable_session, seed):
    """Threaded stable admission stays serializable (decisions are
    scheduling-dependent, serializability is not)."""
    harness = ThroughputHarness(registry=stable_session.registry,
                                max_rounds=500_000)
    run = harness.run_one("HashTable", SWEEP.with_(seed=seed),
                          workers=3, shards=4, stable=True)
    assert run.serializable, run.summary()
