"""Round-trips of the compiled-verdict payloads through the engine
cache shape — the v2 rows that carry the synthesized tier's origin /
proved / countermodel columns — plus the compiler-version bump that
retires every v1 cache entry."""

import json

from repro.abduction import DEMO_FAMILY, make_demo_registry
from repro.api import Session
from repro.stability import (STABILITY_COMPILER_VERSION, CandidateResult,
                             PairStability)
from repro.stability.compiler import pair_from_payload, pair_payload


def _pair(**overrides) -> PairStability:
    """A synthesized-tier verdict exercising every payload column."""
    fields = dict(
        m1="write", m2="write", verdict="synthesized",
        stable_text="(v1 = v2) | (v1 = r1)",
        candidates=(
            CandidateResult(text="v1 = v2", passed=True, armed=True,
                            admitted=7, violations=0),
            CandidateResult(text="v1 = r1", passed=True, armed=True,
                            admitted=3, violations=0, proved=True,
                            origin="abduced"),
            CandidateResult(text="v2 = r1", passed=False, armed=False,
                            admitted=2, violations=1, origin="abduced",
                            countermodel={"family": "RegisterCell",
                                          "root": "{value: a}",
                                          "drift": "{value: b}",
                                          "args1": ["'a'"],
                                          "args2": ["'b'"],
                                          "r1": "'init'"}),
        ),
        cases=42,
        synthesis={"checked": 8, "pruned": 1, "refuted": 0,
                   "rounds": 3, "armed": 2},
    )
    fields.update(overrides)
    return PairStability(**fields)


def test_payload_roundtrip_preserves_synthesized_tier():
    pair = _pair()
    rebuilt = pair_from_payload(pair_payload(pair))
    assert rebuilt == pair
    # The v2 columns specifically: they are what the version bump
    # protects, so spell them out beyond dataclass equality.
    by_text = {c.text: c for c in rebuilt.candidates}
    assert by_text["v1 = r1"].origin == "abduced"
    assert by_text["v1 = r1"].proved
    assert by_text["v2 = r1"].countermodel["r1"] == "'init'"
    assert rebuilt.synthesis == pair.synthesis
    assert rebuilt.verdict == "synthesized"


def test_payload_roundtrip_of_plain_verdicts():
    for verdict, text in (("weakened", "v1 ~= v2"), ("fragile", None)):
        pair = _pair(verdict=verdict, stable_text=text, candidates=(),
                     synthesis=None)
        assert pair_from_payload(pair_payload(pair)) == pair


def test_payload_survives_json_serialization():
    """The engine cache persists payloads as JSON text: the round-trip
    must hold through an actual dumps/loads, not just dict identity."""
    pair = _pair()
    thawed = json.loads(json.dumps(pair_payload(pair)))
    assert pair_from_payload(thawed) == pair


def test_payload_drops_transient_witnesses():
    """Witnesses are the abduction loop's in-memory counterexample
    store; they never reach the cache."""
    pair = _pair(candidates=(
        CandidateResult(text="v1 = v2", passed=False, armed=False,
                        admitted=1, violations=2, origin="abduced",
                        witnesses=(("'a'",), ("'b'",), "'init'")),))
    payload = pair_payload(pair)
    assert "witness" not in json.dumps(payload)
    rebuilt = pair_from_payload(payload)
    assert rebuilt.candidates[0].witnesses == ()
    # witnesses are compare=False, so equality still holds.
    assert rebuilt == pair


def test_roundtrip_of_real_abduced_verdicts():
    """End-to-end: the demo cell's synthesized verdicts survive the
    payload shape the ABDUCTION tasks actually persist."""
    session = Session(registry=make_demo_registry(), cache=False)
    report = session.abduce_stable([DEMO_FAMILY])[DEMO_FAMILY]
    assert report.synthesized_count > 0
    for pair in report.pairs:
        rebuilt = pair_from_payload(pair_payload(pair))
        assert rebuilt == pair
        if pair.verdict == "synthesized":
            assert any(c.origin == "abduced" and c.armed
                       for c in rebuilt.candidates)
            assert rebuilt.synthesis["armed"] >= 1


def test_compiler_version_bump_retired_v1_rows():
    """The payload rows grew origin/proved/countermodel columns and the
    synthesis section for the abduction loop; v1 entries must never
    deserialize into the new shape, which the version bump (part of
    every stability task key) guarantees.  If this assertion fires
    because the shape changed again: bump the version, don't relax the
    test."""
    assert STABILITY_COMPILER_VERSION == 2
    row = pair_payload(_pair())["candidates"][0]
    # text, passed, armed, admitted, violations, proved, countermodel,
    # origin — the 8-column v2 row.
    assert len(row) == 8
