"""Stability compilation through the sharded engine: planning,
content-addressed caching of compiled verdicts, and report assembly."""

import pytest

from repro.api import Registry
from repro.engine import (ResultCache, TaskPlanner, execute_task,
                          run_stability_compilation)
from repro.engine.tasks import STABILITY, VerifyTask
from repro.eval import Scope

SCOPE = Scope().smaller()


@pytest.fixture
def registry() -> Registry:
    return Registry.with_builtins()


def test_plan_groups_fragile_conditions_by_first_operation(registry):
    plan = TaskPlanner(registry).plan_stability(["HashSet"], SCOPE)
    groups = {task.group for task in plan.tasks}
    # Every fragile Set between condition has a state query on s1; the
    # m1 operations with at least one fragile pair:
    assert groups == {"add_", "remove_", "size"}
    for task in plan.tasks:
        assert task.kind == STABILITY
        assert task.key
        payload = plan.payloads[task.index]
        assert all(c.m1 == task.group for c in payload)


def test_plan_keys_depend_on_scope(registry):
    planner = TaskPlanner(registry)
    small = planner.plan_stability(["HashSet"], SCOPE)
    full = planner.plan_stability(["HashSet"], Scope())
    assert {t.key for t in small.tasks}.isdisjoint(
        {t.key for t in full.tasks})


def test_plan_keys_depend_on_router_presence():
    """Registering a shard router changes the compilation inputs (it
    gates the footprint atoms), so it must retire cached verdicts."""
    from stability_fixture import make_runnable_register_registry
    from register_fixture import make_register_registry
    routerless = TaskPlanner(make_register_registry()) \
        .plan_stability(["Register"], SCOPE)
    routed = TaskPlanner(make_runnable_register_registry()) \
        .plan_stability(["Register"], SCOPE)
    assert {t.key for t in routerless.tasks}.isdisjoint(
        {t.key for t in routed.tasks})


def test_execute_stability_task_returns_payloads(registry):
    plan = TaskPlanner(registry).plan_stability(["HashSet"], SCOPE)
    task = plan.tasks[0]
    outcome = execute_task(task, registry)
    assert len(outcome.results) == len(plan.payloads[task.index])
    for result in outcome.results:
        payload = result.payload
        assert payload["verdict"] in ("weakened", "fragile")
        assert payload["m1"] == task.group


def test_execute_stability_task_rejects_unknown_group(registry):
    task = VerifyTask(index=0, kind=STABILITY, structure="HashSet",
                      backend="bounded", scope=SCOPE, group="frobnicate")
    with pytest.raises(ValueError):
        execute_task(task, registry)


def test_compiled_verdicts_are_served_from_cache(tmp_path, registry):
    cache = ResultCache(tmp_path / "cache")
    cold = run_stability_compilation(SCOPE, names=["HashSet"],
                                     registry=registry, cache=cache)
    warm = run_stability_compilation(SCOPE, names=["HashSet"],
                                     registry=registry, cache=cache)
    report_cold, report_warm = cold["HashSet"], warm["HashSet"]
    assert report_cold.cache_hits == 0
    assert report_warm.cache_hits == len(report_warm.task_timings) > 0
    # Warm verdicts are byte-identical to the cold run's, candidate
    # details (including the armed flag) included.
    assert [(p.m1, p.m2, p.verdict, p.stable_text, p.candidates)
            for p in report_warm.pairs] \
        == [(p.m1, p.m2, p.verdict, p.stable_text, p.candidates)
            for p in report_cold.pairs]
    assert any(c.armed for p in report_warm.pairs
               for c in p.candidates)


def test_report_covers_every_between_condition(registry):
    reports = run_stability_compilation(SCOPE, names=["Accumulator"],
                                        registry=registry)
    report = reports["Accumulator"]
    # All four Accumulator between conditions are arg-only: verbatim
    # stable, zero tasks, zero elapsed.
    assert report.stable_count == 4
    assert report.weakened_count == report.fragile_count == 0
    assert report.task_timings == []
    assert "4 stable" in report.summary()
