"""Session-scoped fixtures for the drift-stability tests: compiling the
full catalog once is the expensive part, so one compiled session serves
every test in this directory."""

import pytest

from stability_fixture import make_runnable_register_registry

from repro.api import Session
from repro.eval import Scope


@pytest.fixture(scope="session")
def stable_session() -> Session:
    """A session whose registry has compiled drift-stable conditions
    for every structure (full paper scope — see the scope-adequacy note
    in :mod:`repro.stability.quantified`)."""
    session = Session(registry=make_runnable_register_registry(),
                      scope=Scope(), cache=False)
    session.compile_stable()
    return session
