"""The ``run`` subcommand and the ``bench --suite runtime`` regression
gate."""

import json

import pytest

from repro.__main__ import main

BUILTINS = {"Accumulator", "ListSet", "HashSet", "AssociationList",
            "HashTable", "ArrayList"}


# -- run -----------------------------------------------------------------------

def test_run_single_policy(capsys):
    code = main(["run", "--name", "HashSet", "--policy", "commutativity",
                 "--txns", "4", "--ops", "4", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "HashSet" in out and "commutativity" in out
    assert "ops/s" in out


def test_run_all_policies_prints_comparison(capsys):
    code = main(["run", "--name", "HashTable", "--txns", "4", "--ops",
                 "4", "--seed", "3"])
    assert code == 0
    out = capsys.readouterr().out
    for policy in ("commutativity", "read-write", "mutex"):
        assert policy in out
    assert "commutativity wins" in out


def test_run_txn_stats(capsys):
    code = main(["run", "--name", "HashSet", "--policy", "read-write",
                 "--txns", "4", "--ops", "4", "--seed", "3",
                 "--txn-stats"])
    assert code == 0
    assert "per-transaction aborts" in capsys.readouterr().out


def test_run_multi_worker(capsys):
    code = main(["run", "--name", "HashSet", "--policy", "commutativity",
                 "--txns", "6", "--ops", "4", "--workers", "3",
                 "--batch", "2", "--seed", "1"])
    assert code == 0


def test_run_unknown_name_exits_2(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--name", "NoSuchThing"])


# -- bench --suite runtime ------------------------------------------------------

def _run_bench(tmp_path, *extra):
    output = tmp_path / "BENCH_runtime.json"
    code = main(["bench", "--suite", "runtime", "--output", str(output),
                 *extra])
    return code, output


def test_bench_runtime_emits_report(tmp_path, capsys):
    code, output = _run_bench(tmp_path)
    assert code == 0
    data = json.loads(output.read_text())
    assert data["schema"] == 1
    assert data["suite"] == "runtime"
    assert set(data["structures"]) == BUILTINS
    for entry in data["structures"].values():
        assert set(entry["policies"]) == {"commutativity", "read-write",
                                          "mutex"}
        assert entry["elapsed"] >= 0
        assert entry["operations"] > 0
        # The acceptance criterion: commutativity admits strictly fewer
        # aborts than read-write on >= 1 non-disjoint workload each.
        assert entry["commutativity_beats_read_write_on"]
        for stats in entry["policies"].values():
            assert stats["commits"] > 0
            assert stats["ops_per_second"] >= 0
    out = capsys.readouterr().out
    assert "commutativity wins" in out
    assert "BENCH_runtime.json" in out


def test_bench_runtime_passes_against_generous_baseline(tmp_path, capsys):
    code, output = _run_bench(tmp_path)
    baseline = json.loads(output.read_text())
    for entry in baseline["structures"].values():
        entry["elapsed"] = entry["elapsed"] * 10 + 1.0
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    code, _ = _run_bench(tmp_path, "--baseline", str(baseline_path))
    assert code == 0
    assert "within 2x of baseline" in capsys.readouterr().out


def test_bench_runtime_fails_on_regression(tmp_path, capsys):
    """Sweep times sit under the micro-timing floor, so force the gate
    with a tiny allowed multiple instead of a zeroed baseline."""
    code, output = _run_bench(tmp_path)
    baseline = json.loads(output.read_text())
    for entry in baseline["structures"].values():
        entry["elapsed"] = 0.0
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    code, _ = _run_bench(tmp_path, "--baseline", str(baseline_path),
                         "--max-regression", "0.000001")
    assert code == 1
    assert "regressions" in capsys.readouterr().err


def test_bench_runtime_fails_when_a_structure_vanishes(tmp_path, capsys):
    code, output = _run_bench(tmp_path)
    baseline = json.loads(output.read_text())
    baseline["structures"]["Heap"] = {"elapsed": 0.01}
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    code, _ = _run_bench(tmp_path, "--baseline", str(baseline_path))
    assert code == 1
    assert "missing from" in capsys.readouterr().err


def test_bench_runtime_rejects_incompatible_baseline(tmp_path, capsys):
    code, output = _run_bench(tmp_path)
    baseline = json.loads(output.read_text())
    baseline["suite"] = "verify"
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    code, _ = _run_bench(tmp_path, "--baseline", str(baseline_path))
    assert code == 2
    assert "incompatible" in capsys.readouterr().err


def test_checked_in_baseline_is_compatible(tmp_path):
    """The repo baseline must describe the workloads this bench runs, or
    CI's gate silently rots."""
    import pathlib
    repo = pathlib.Path(__file__).resolve().parent.parent.parent
    baseline = json.loads(
        (repo / "benchmarks" / "BENCH_runtime_baseline.json").read_text())
    code, output = _run_bench(tmp_path)
    payload = json.loads(output.read_text())
    assert baseline["suite"] == payload["suite"]
    assert baseline["workloads"] == payload["workloads"]
    assert set(baseline["structures"]) == set(payload["structures"])


# -- sharding + adaptive CLI ----------------------------------------------------

def test_run_sharded_with_stats(capsys):
    code = main(["run", "--name", "HashSet", "--policy", "commutativity",
                 "--txns", "4", "--ops", "4", "--seed", "3",
                 "--shards", "4", "--shard-stats"])
    assert code == 0
    out = capsys.readouterr().out
    assert "shards" in out
    assert "conflict rate" in out


def test_run_adaptive_hybrid(capsys):
    code = main(["run", "--name", "HashSet", "--policy", "commutativity",
                 "--profile", "write-heavy", "--distribution", "hot-key",
                 "--txns", "4", "--ops", "4", "--seed", "3",
                 "--adaptive", "hybrid"])
    assert code == 0


def test_run_preload(capsys):
    code = main(["run", "--name", "ArrayList", "--policy",
                 "commutativity", "--txns", "4", "--ops", "4",
                 "--preload", "16", "--seed", "3"])
    assert code == 0


def test_bench_runtime_emits_adaptive_section(tmp_path):
    code, output = _run_bench(tmp_path)
    assert code == 0
    data = json.loads(output.read_text())
    section = data["adaptive"]
    assert section["workload"] == "write-heavy-hotkey"
    assert set(section["structures"]) == BUILTINS
    for entry in section["structures"].values():
        # The deterministic acceptance shape: hybrid strictly reduces
        # aborts wherever plain commutativity aborts at all.
        assert entry["hybrid_aborts"] < entry["plain_aborts"] \
            or entry["plain_aborts"] == 0


def test_bench_runtime_sharded_emits_scaling_section(tmp_path):
    """The JSON shape of the flat-vs-sharded comparison.  The actual
    performance gate (sharded beats flat on >= 1 workload per family)
    is wall-clock dependent, so it is enforced only in the dedicated
    CI ``bench-runtime --shards 4`` leg — this unit test must stay
    green on a loaded runner, whatever exit code the gate produced."""
    code, output = _run_bench(tmp_path, "--shards", "4")
    assert code in (0, 1)  # 1 = the performance gate tripped, not an error
    data = json.loads(output.read_text())
    assert data["shards"] == 4
    section = data["scaling"]
    assert section["shards"] == 4 and section["workers"] >= 4
    assert section["conflict_mode"] == "block"
    assert set(section["structures"]) == BUILTINS
    families = {entry["family"]
                for entry in section["structures"].values()}
    assert families == {"Set", "Map", "ArrayList", "Accumulator"}
    for entry in section["structures"].values():
        assert set(entry["beats_flat_on"]) <= set(entry["workloads"])
        for cell in entry["workloads"].values():
            assert cell["flat_committed_ops_per_second"] > 0
            assert cell["sharded_committed_ops_per_second"] > 0
