"""Fixtures for the workloads suite: reuse the api tests' custom
Register structure to exercise the generic generation path."""

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "api"))

from register_fixture import make_register_registry


@pytest.fixture
def register_registry():
    return make_register_registry()
