"""Workload generation: determinism, profiles, distributions, and the
generic path for custom registry structures."""

import collections

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import DEFAULT_REGISTRY
from repro.runtime import SpeculativeExecutor
from repro.workloads import (PROFILES, WorkloadError, WorkloadGenerator,
                             WorkloadSpec, generate_workload)

BUILTINS = ("ListSet", "HashSet", "AssociationList", "HashTable",
            "ArrayList", "Accumulator")


# -- determinism ---------------------------------------------------------------

@pytest.mark.parametrize("name", BUILTINS)
def test_same_seed_same_programs(name):
    spec = WorkloadSpec(seed=7)
    assert generate_workload(name, spec) == generate_workload(name, spec)


def test_different_seeds_differ():
    a = generate_workload("HashSet", WorkloadSpec(seed=1))
    b = generate_workload("HashSet", WorkloadSpec(seed=2))
    assert a != b


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 1000), st.integers(2, 8), st.sampled_from(BUILTINS))
def test_generation_byte_identical_across_workers(seed, workers, name):
    """The satellite property: the ``workers`` execution hint MUST NOT
    influence generation — serial and multi-worker runs execute
    byte-identical transaction programs."""
    base = WorkloadSpec(seed=seed, transactions=4, ops_per_transaction=4)
    serial = generate_workload(name, base)
    threaded = generate_workload(name, base.with_(workers=workers))
    assert repr(serial).encode() == repr(threaded).encode()


# -- shape ---------------------------------------------------------------------

def test_counts_respected():
    spec = WorkloadSpec(transactions=5, ops_per_transaction=9)
    programs = generate_workload("HashSet", spec)
    assert len(programs) == 5
    assert all(len(ops) == 9 for ops in programs)


def _mutator_fraction(name, programs):
    spec = DEFAULT_REGISTRY.spec(name)
    ops = [op for program in programs for op, _ in program]
    mutators = sum(spec.operations[op].mutator for op in ops)
    return mutators / len(ops)


@pytest.mark.parametrize("name", BUILTINS)
def test_profiles_shift_the_op_mix(name):
    big = WorkloadSpec(transactions=20, ops_per_transaction=20, seed=5)
    fractions = {
        profile: _mutator_fraction(
            name, generate_workload(name, big.with_(profile=profile)))
        for profile in ("read-heavy", "mixed", "write-heavy")}
    assert fractions["read-heavy"] < fractions["mixed"] \
        < fractions["write-heavy"]


def test_write_only_profile_has_no_observers():
    programs = generate_workload(
        "HashSet", WorkloadSpec(profile="write-only", transactions=10,
                                ops_per_transaction=10))
    assert _mutator_fraction("HashSet", programs) == 1.0


def _key_counts(programs):
    counts = collections.Counter()
    for program in programs:
        for _, args in program:
            if args:
                counts[args[0]] += 1
    return counts


def test_hot_key_distribution_concentrates_traffic():
    spec = WorkloadSpec(profile="write-only", distribution="hot-key",
                        transactions=30, ops_per_transaction=20,
                        key_space=16, seed=3)
    counts = _key_counts(generate_workload("HashSet", spec))
    total = sum(counts.values())
    assert counts["k0"] / total > 0.5  # hot_fraction defaults to 0.8


def test_zipfian_distribution_skews_low_ranks():
    spec = WorkloadSpec(profile="write-only", distribution="zipfian",
                        transactions=30, ops_per_transaction=20,
                        key_space=16, seed=3)
    counts = _key_counts(generate_workload("HashSet", spec))
    uniform = WorkloadSpec(profile="write-only", distribution="uniform",
                           transactions=30, ops_per_transaction=20,
                           key_space=16, seed=3)
    uniform_counts = _key_counts(generate_workload("HashSet", uniform))
    assert counts["k0"] > max(uniform_counts.values())
    assert counts["k0"] == max(counts.values())


# -- validation ----------------------------------------------------------------

def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="unknown profile"):
        WorkloadSpec(profile="chaotic")


def test_unknown_distribution_rejected():
    with pytest.raises(ValueError, match="unknown distribution"):
        WorkloadSpec(distribution="pareto")


def test_profiles_cover_the_documented_names():
    assert {"read-heavy", "mixed", "write-heavy"} <= set(PROFILES)


# -- ArrayList index safety ----------------------------------------------------

def test_arraylist_programs_track_a_safe_balance():
    """Every emitted index stays below the transaction's running net
    insertion count (at most equal for add_at), the invariant that keeps
    preconditions valid under any interleaving."""
    spec = WorkloadSpec(profile="write-heavy", transactions=20,
                        ops_per_transaction=15, seed=11)
    for program in generate_workload("ArrayList", spec):
        balance = 0
        for op, args in program:
            if op == "add_at":
                assert 0 <= args[0] <= balance
                balance += 1
            elif op in ("set", "set_", "get", "remove_at", "remove_at_"):
                assert 0 <= args[0] < balance
                if op.startswith("remove_at"):
                    balance -= 1
            assert balance >= 0


@pytest.mark.parametrize("policy", ("commutativity", "read-write"))
def test_arraylist_workload_executes_under_every_policy(policy):
    spec = WorkloadSpec(profile="mixed", transactions=5,
                        ops_per_transaction=6, seed=13)
    programs = generate_workload("ArrayList", spec)
    report = SpeculativeExecutor("ArrayList", policy, seed=13,
                                 max_rounds=200_000).run(programs)
    assert report.commits == 5
    assert report.serializable


# -- the generic path for custom structures ------------------------------------

def test_custom_structure_generates_and_executes(register_registry):
    class CellImpl:
        def __init__(self):
            self.value = "init"

        def write(self, v):
            old = self.value
            self.value = v
            return old

        def read(self):
            return self.value

        def abstract_state(self):
            from repro.eval import Record
            return Record(value=self.value)

    register_registry.register_implementation("Register", CellImpl)
    spec = WorkloadSpec(transactions=4, ops_per_transaction=5, seed=1)
    generator = WorkloadGenerator(register_registry)
    programs = generator.generate("Register", spec)
    assert programs == generator.generate("Register", spec)
    ops = {op for program in programs for op, _ in program}
    assert ops <= {"read", "write"}
    assert "write" in ops
    report = SpeculativeExecutor(
        "Register", "commutativity", seed=1, max_rounds=200_000,
        registry=register_registry).run(programs)
    assert report.commits == 4
    assert report.serializable


def test_structure_without_safe_operations_raises():
    from repro.api import Registry
    from repro.eval import Record
    from repro.logic.sorts import Sort
    from repro.specs.interface import (DataStructureSpec, Operation,
                                       Param, parse_pre)

    params = (Param("v", Sort.OBJ),)
    fields = {"value": Sort.OBJ}
    # The precondition only holds in one state, so no call is safe in
    # every in-scope state and the generic generator must refuse.
    op = Operation(
        name="fussy", params=params, result_sort=None,
        precondition=parse_pre("s.value = v", fields, params, {}, None),
        semantics=lambda state, args: (state, None), mutator=True)
    spec = DataStructureSpec(
        name="Fussy", state_fields=fields, principal_field=None,
        operations={"fussy": op}, initial_state=Record(value="a"),
        invariant=lambda state: True,
        states=lambda scope: iter([Record(value=v)
                                   for v in scope.objects]),
        arguments=lambda op, scope: iter([(v,) for v in scope.objects]))
    registry = Registry()
    registry.register_spec("Fussy", spec)
    with pytest.raises(WorkloadError):
        WorkloadGenerator(registry).generate(
            "Fussy", WorkloadSpec(transactions=1))


# -- time-varying hotspot ------------------------------------------------------

def test_shifting_hot_key_distribution_moves_the_hotspot():
    """The hot key must rotate over the pick stream: early and late
    picks concentrate on different keys."""
    import random
    from repro.workloads import ShiftingHotKeyDistribution
    dist = ShiftingHotKeyDistribution(hot_fraction=1.0, period=10)
    rng = random.Random(0)
    picks = [dist.pick(rng, 4) for _ in range(40)]
    assert picks[:10] == [0] * 10
    assert picks[10:20] == [1] * 10
    assert picks[30:] == [3] * 10


def test_shifting_hotspot_workload_generates_and_executes():
    spec = WorkloadSpec(profile="write-heavy",
                        distribution="shifting-hot-key",
                        transactions=4, ops_per_transaction=4,
                        key_space=6, seed=9)
    programs = generate_workload("HashSet", spec)
    assert generate_workload("HashSet", spec) == programs
    report = SpeculativeExecutor("HashSet", "commutativity",
                                 seed=9, max_rounds=100_000).run(programs)
    assert report.commits == 4
    assert report.serializable


def test_shifting_hot_key_validation():
    from repro.workloads import ShiftingHotKeyDistribution
    with pytest.raises(ValueError):
        ShiftingHotKeyDistribution(hot_fraction=1.5)
    with pytest.raises(ValueError):
        ShiftingHotKeyDistribution(period=0)


# -- YCSB-style load phase -----------------------------------------------------

@pytest.mark.parametrize("name", BUILTINS)
def test_preload_zero_keeps_generation_byte_identical(name):
    """preload is additive: at preload=0 both the programs and the
    (empty) setup are exactly the historical generation."""
    base = WorkloadSpec(seed=13)
    generator = WorkloadGenerator()
    assert generator.generate(name, base) \
        == generator.generate(name, base.with_(preload=0))
    assert generator.generate_setup(name, base) == []


@pytest.mark.parametrize("name", BUILTINS)
def test_preload_setup_is_deterministic_and_executes(name):
    spec = WorkloadSpec(profile="mixed", transactions=4,
                        ops_per_transaction=5, key_space=12,
                        preload=8, seed=21)
    generator = WorkloadGenerator()
    setup = generator.generate_setup(name, spec)
    assert setup == generator.generate_setup(name, spec)
    assert setup  # every built-in family has a load phase
    programs = generator.generate(name, spec)
    report = SpeculativeExecutor(name, "commutativity", seed=21,
                                 max_rounds=200_000) \
        .run(programs, setup=setup)
    assert report.commits == 4
    assert report.serializable


def test_preload_spreads_arraylist_indices():
    """The whole point of the load phase for ArrayList: indices range
    over the preloaded region, not just the transaction's own balance."""
    spec = WorkloadSpec(profile="write-heavy", transactions=6,
                        ops_per_transaction=8, preload=32, seed=3)
    programs = WorkloadGenerator().generate("ArrayList", spec)
    indices = [args[0] for ops in programs for op, args in ops
               if op in ("get", "set", "set_", "add_at", "remove_at",
                         "remove_at_")]
    assert max(indices) >= 16  # far beyond any own-balance bound
