"""Throughput harness: sweeps, policy ordering, multi-worker execution,
and the Session wiring."""

import pytest

from repro.api import Session
from repro.reporting import policy_comparison_table, workload_report_table
from repro.workloads import (BENCH_WORKLOADS, DEFAULT_WORKLOADS,
                             ThroughputHarness, WorkloadSpec)

BUILTINS = ("ListSet", "HashSet", "AssociationList", "HashTable",
            "ArrayList", "Accumulator")

SMALL = WorkloadSpec(name="small", transactions=4, ops_per_transaction=4,
                     key_space=6, seed=5)


def test_run_one_commits_everything():
    run = ThroughputHarness().run_one("HashSet", SMALL)
    assert run.commits == SMALL.transactions
    assert run.serializable
    assert run.operations >= SMALL.transactions * SMALL.ops_per_transaction
    assert run.ops_per_second > 0
    assert run.workload is SMALL


def test_sweep_covers_the_cross_product():
    harness = ThroughputHarness()
    runs = harness.sweep(structures=("HashSet", "Accumulator"),
                         workloads=(SMALL,),
                         policies=("commutativity", "mutex"))
    assert len(runs) == 2 * 1 * 2
    assert {(r.structure, r.policy) for r in runs} == {
        ("HashSet", "commutativity"), ("HashSet", "mutex"),
        ("Accumulator", "commutativity"), ("Accumulator", "mutex")}
    assert all(r.serializable for r in runs)


def test_runnable_structures_are_the_six_builtins():
    assert set(ThroughputHarness().runnable_structures()) == set(BUILTINS)


def test_default_workloads_share_keys_across_transactions():
    """The sweeps must exercise *non-disjoint* workloads: every
    transaction draws from one shared key space."""
    for workload in set(DEFAULT_WORKLOADS) | set(BENCH_WORKLOADS):
        harness = ThroughputHarness()
        programs = harness.generator.generate("HashSet", workload)
        keysets = [{args[0] for _, args in ops if args}
                   for ops in programs]
        shared = set.union(*keysets)
        assert any(keysets[i] & keysets[j]
                   for i in range(len(keysets))
                   for j in range(i + 1, len(keysets))), shared


@pytest.mark.parametrize("name", BUILTINS)
def test_commutativity_beats_read_write_somewhere(name):
    """The acceptance-criterion shape: on at least one non-disjoint
    bench workload per structure, the verified commutativity conditions
    admit strictly fewer aborts than read/write conflict detection."""
    harness = ThroughputHarness()
    wins = []
    for workload in BENCH_WORKLOADS:
        comm = harness.run_one(name, workload, policy="commutativity")
        rw = harness.run_one(name, workload, policy="read-write")
        assert comm.serializable and rw.serializable
        wins.append(comm.aborts < rw.aborts)
    assert any(wins), f"no strict commutativity win for {name}"


def test_mutex_conflicts_on_every_check():
    run = ThroughputHarness().run_one("HashSet", SMALL, policy="mutex")
    assert run.conflict_rate == 1.0
    assert run.serializable


# -- multi-worker execution ----------------------------------------------------

@pytest.mark.parametrize("workers", (2, 4))
@pytest.mark.parametrize("conflict_mode", ("abort", "block"))
def test_multi_worker_run_is_serializable(workers, conflict_mode):
    harness = ThroughputHarness(workers=workers)
    run = harness.run_one("HashSet", SMALL.with_(transactions=8),
                          conflict_mode=conflict_mode)
    assert run.workers == workers
    assert run.commits == 8
    assert run.serializable


def test_explicit_serial_harness_overrides_workload_hint():
    """A harness configured workers=1 must never be escalated to
    nondeterministic threaded execution by a spec's workers hint; with
    no harness setting, the hint applies."""
    hinted = SMALL.with_(workers=4)
    assert ThroughputHarness(workers=1).run_one("HashSet",
                                                hinted).workers == 1
    assert ThroughputHarness().run_one("HashSet", hinted).workers == 4
    assert ThroughputHarness(workers=2).run_one(
        "HashSet", hinted, workers=3).workers == 3


def test_batched_workers_commit_everything():
    harness = ThroughputHarness(workers=3, batch=4)
    run = harness.run_one("HashTable",
                          SMALL.with_(transactions=9,
                                      ops_per_transaction=6))
    assert run.commits == 9
    assert run.serializable


# -- Session wiring ------------------------------------------------------------

def test_session_run_workload_defaults():
    report = Session().run_workload("HashSet", transactions=4,
                                    ops_per_transaction=4, seed=5)
    assert report.commits == 4
    assert report.serializable
    assert report.workers == 1


def test_session_run_workload_profile_string_and_workers():
    report = Session().run_workload(
        "Accumulator", "write-heavy", transactions=6,
        ops_per_transaction=4, seed=2, workers=2)
    assert report.commits == 6
    assert report.workers == 2
    assert report.serializable


def test_session_run_workload_unknown_name_suggests():
    from repro.api import UnknownNameError
    with pytest.raises(UnknownNameError):
        Session().run_workload("HashSert")


def test_session_throughput_sweep():
    runs = Session().throughput_sweep(structures=("HashSet",),
                                      workloads=(SMALL,),
                                      policies=("commutativity",))
    assert len(runs) == 1
    assert runs[0].serializable


# -- reporting -----------------------------------------------------------------

def test_policy_comparison_table_shape():
    harness = ThroughputHarness()
    runs = harness.sweep(structures=("HashSet",), workloads=(SMALL,))
    table = policy_comparison_table(runs)
    assert "commutativity: aborts" in table
    assert "read-write: aborts" in table
    assert "mutex: aborts" in table
    assert "commutativity wins" in table
    assert "HashSet" in table and "small" in table


def test_workload_report_table_shape():
    harness = ThroughputHarness()
    runs = harness.sweep(structures=("HashSet",), workloads=(SMALL,),
                         policies=("commutativity",))
    table = workload_report_table(runs)
    assert "ops/s" in table and "serializable" in table
    assert "HashSet" in table


# -- sharding ------------------------------------------------------------------

def test_run_one_shards_precedence():
    """Same precedence scheme as workers: argument, then harness
    setting, then the workload's hint."""
    hinted = SMALL.with_(shards=4)
    assert ThroughputHarness().run_one("HashSet", SMALL).shards == 1
    assert ThroughputHarness().run_one("HashSet", hinted).shards == 4
    assert ThroughputHarness(shards=1).run_one("HashSet",
                                               hinted).shards == 1
    assert ThroughputHarness(shards=2).run_one(
        "HashSet", hinted, shards=8).shards == 8


def test_sweep_over_shard_counts():
    harness = ThroughputHarness()
    runs = harness.sweep(structures=("HashSet",), workloads=(SMALL,),
                         policies=("commutativity",),
                         shard_counts=(1, 4))
    assert [run.shards for run in runs] == [1, 4]
    assert all(run.serializable for run in runs)
    # Identical decisions either way at workers=1 (the sharded manager
    # only skips unconditionally-commuting pairs).
    assert runs[0].aborts == runs[1].aborts
    assert runs[0].report.commit_order == runs[1].report.commit_order


def test_sharded_multi_worker_run_is_serializable():
    harness = ThroughputHarness(workers=4, shards=4,
                                max_rounds=500_000)
    run = harness.run_one("HashTable", SMALL.with_(transactions=8))
    assert run.shards == 4 and run.workers == 4
    assert run.commits == 8
    assert run.serializable
    assert len(run.shard_stats) == 4


def test_scaling_workloads_are_non_disjoint():
    """The flat-vs-sharded comparison must stay honest: scaling
    workloads share one key space (and one preloaded structure)."""
    from repro.workloads import SCALING_WORKLOADS
    for workload in SCALING_WORKLOADS:
        harness = ThroughputHarness()
        programs = harness.generator.generate("HashSet", workload)
        keysets = [{args[0] for _, args in ops if args}
                   for ops in programs]
        assert any(keysets[i] & keysets[j]
                   for i in range(len(keysets))
                   for j in range(i + 1, len(keysets)))


# -- reporting: speedup + shard contention -------------------------------------

def test_policy_comparison_table_has_speedup_columns():
    harness = ThroughputHarness()
    runs = harness.sweep(structures=("HashSet",), workloads=(SMALL,))
    table = policy_comparison_table(runs)
    assert "commutativity speedup vs mutex" in table
    assert "read-write speedup vs mutex" in table
    assert "x" in table  # rendered ratios like 1.25x


def test_shard_contention_table_shape():
    from repro.reporting import shard_contention_table
    harness = ThroughputHarness(shards=4)
    runs = [harness.run_one("HashSet", SMALL)]
    table = shard_contention_table(runs)
    assert "shard" in table and "conflicts" in table
    # One row per shard.
    assert len(table.splitlines()) == 2 + 4
