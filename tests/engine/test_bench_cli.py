"""The ``bench`` subcommand: emits BENCH_verify.json and gates
verification-time regressions against a checked-in baseline."""

import json

from repro.__main__ import main


def _run_bench(tmp_path, *extra):
    output = tmp_path / "BENCH_verify.json"
    code = main(["bench", "--backend", "bounded", "--max-seq-len", "1",
                 "--jobs", "2", "--output", str(output), *extra])
    return code, output


def test_bench_emits_timing_report(tmp_path, capsys):
    code, output = _run_bench(tmp_path)
    assert code == 0
    data = json.loads(output.read_text())
    assert data["schema"] == 1
    assert data["backend"] == "bounded"
    assert data["jobs"] == 2
    assert set(data["structures"]) == {
        "Accumulator", "ListSet", "HashSet", "AssociationList",
        "HashTable", "ArrayList"}
    for entry in data["structures"].values():
        assert entry["all_verified"]
        assert entry["conditions"] > 0
        assert entry["elapsed"] >= 0
        assert entry["tasks"] > 0
    assert sum(e["conditions"] for e in data["structures"].values()) == 765
    out = capsys.readouterr().out
    assert "task shard" in out and "BENCH_verify.json" in out


def test_bench_passes_against_generous_baseline(tmp_path, capsys):
    code, output = _run_bench(tmp_path)
    baseline = json.loads(output.read_text())
    for entry in baseline["structures"].values():
        entry["elapsed"] = entry["elapsed"] * 10 + 1.0
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    code, _ = _run_bench(tmp_path, "--baseline", str(baseline_path))
    assert code == 0
    assert "within 2x of baseline" in capsys.readouterr().out


def test_bench_fails_on_regression(tmp_path, capsys):
    code, output = _run_bench(tmp_path)
    baseline = json.loads(output.read_text())
    # A baseline claiming everything used to verify instantly: any real
    # structure (ArrayList at least) now exceeds 2x the floor.
    for entry in baseline["structures"].values():
        entry["elapsed"] = 0.0
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    code, _ = _run_bench(tmp_path, "--baseline", str(baseline_path))
    assert code == 1
    assert "regressions" in capsys.readouterr().err


def test_bench_rejects_incompatible_baseline(tmp_path, capsys):
    code, output = _run_bench(tmp_path)
    baseline = json.loads(output.read_text())
    baseline["scope"]["max_seq_len"] = 3  # recorded at a different scope
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    code, _ = _run_bench(tmp_path, "--baseline", str(baseline_path))
    assert code == 2
    assert "incompatible" in capsys.readouterr().err


def test_bench_unreadable_baseline(tmp_path, capsys):
    code, _ = _run_bench(tmp_path, "--baseline",
                         str(tmp_path / "missing.json"))
    assert code == 2
    assert "unreadable baseline" in capsys.readouterr().err
