"""Content-address keys: stable across runs, sensitive to every
ingredient an obligation's outcome depends on."""

from repro.api import DEFAULT_REGISTRY
from repro.engine import TaskPlanner, task_key
from repro.engine.fingerprint import (condition_fingerprint,
                                      spec_fingerprint)
from repro.eval import Scope

SCOPE = Scope(objects=("a", "b"))


def _keys(names=("ListSet",), scope=SCOPE, backend="bounded",
          registry=None, **kwargs):
    plan = TaskPlanner(registry).plan_verification(names, scope, backend,
                                                   **kwargs)
    return [task.key for task in plan.tasks]


def test_keys_are_stable_across_planners():
    assert _keys() == _keys()


def test_keys_are_unique_per_pair():
    keys = _keys()
    assert len(keys) == len(set(keys)) == 36  # 108 conditions / 3 kinds


def test_scope_changes_key():
    assert _keys() != _keys(scope=Scope(objects=("a", "b", "c")))


def test_backend_changes_key():
    assert _keys() != _keys(backend="symbolic")


def test_use_dynamic_changes_key():
    assert _keys() != _keys(use_dynamic=True)


def test_structure_name_changes_key():
    # ListSet and HashSet share the Set family catalog, but their
    # reports carry per-structure timings, so keys stay distinct.
    assert _keys(("ListSet",)) != _keys(("HashSet",))


def test_engine_version_changes_key():
    spec_fp = spec_fingerprint(DEFAULT_REGISTRY.spec("ListSet"))
    obligations = [condition_fingerprint(c) for c in
                   DEFAULT_REGISTRY.conditions("ListSet")[:3]]
    common = dict(kind="commutativity", structure="ListSet",
                  backend="bounded", scope=SCOPE, spec_fp=spec_fp,
                  obligations=obligations)
    assert task_key(engine_version=1, **common) \
        != task_key(engine_version=2, **common)


def test_mutated_condition_invalidates_key(register_registry,
                                           register_scope):
    """Editing a registered condition's formula changes its task key."""
    before = TaskPlanner(register_registry).plan_verification(
        ("Register",), register_scope, "bounded")
    mutated = make_mutated_registry()
    after = TaskPlanner(mutated).plan_verification(
        ("Register",), register_scope, "bounded")
    before_by_pair = {t.pair: t.key for t in before.tasks}
    after_by_pair = {t.pair: t.key for t in after.tasks}
    assert set(before_by_pair) == set(after_by_pair)
    assert before_by_pair[("read", "read")] != after_by_pair[("read", "read")]
    # Untouched pairs keep their keys (only the edited obligation re-runs).
    assert before_by_pair[("write", "read")] == after_by_pair[("write", "read")]


def make_mutated_registry():
    """The Register registry with one condition formula edited."""
    import register_fixture
    from repro.api import Registry
    from repro.commutativity import CommutativityCondition, Kind

    registry = Registry.with_builtins()
    registry.register_spec("Register", register_fixture.make_register_spec)

    def build(spec):
        conditions = []
        for (m1, m2), text in register_fixture.REGISTER_CONDITIONS.items():
            if (m1, m2) == ("read", "read"):
                text = "s1.value = s1.value"  # edited formula
            for kind in Kind:
                conditions.append(CommutativityCondition(
                    family="Register", m1=m1, m2=m2, kind=kind,
                    text=text, spec=spec))
        return conditions

    registry.register_conditions("Register", build)
    registry.register_inverses("Register",
                               register_fixture.REGISTER_INVERSES)
    return registry


def test_mutated_spec_invalidates_every_key(register_registry,
                                            register_scope):
    """Editing the spec (an operation's semantics source) changes every
    one of the structure's task keys."""
    import register_fixture
    from repro.api import Registry

    def make_flaky_spec():
        spec = register_fixture.make_register_spec()

        def write_clamped(state, args):
            (v,) = args
            return type(state)(value=v), None  # drops the old value

        spec.operations["write"].semantics = write_clamped
        return spec

    mutated = Registry.with_builtins()
    mutated.register_spec("Register", make_flaky_spec)
    mutated.register_conditions("Register",
                                register_fixture.build_register_conditions)

    before = TaskPlanner(register_registry).plan_verification(
        ("Register",), register_scope, "bounded")
    after = TaskPlanner(mutated).plan_verification(
        ("Register",), register_scope, "bounded")
    assert {t.key for t in before.tasks}.isdisjoint(
        {t.key for t in after.tasks})


def test_inverse_plan_keys(register_registry, register_scope):
    plan = TaskPlanner(register_registry).plan_inverses(
        ("Register",), register_scope)
    assert len(plan.tasks) == 1
    task = plan.tasks[0]
    assert task.kind == "inverse" and task.inverse_op == "write"
    assert task.key
