"""Result-cache correctness: hits restore byte-identical reports,
failures never cache, stale engine versions and corrupt files are
ignored, and mutated registrations re-verify."""

import json

from repro.api import Session
from repro.commutativity.verifier import verify_all, verify_data_structure
from repro.engine import ResultCache
from repro.engine.cache import SCHEMA
from repro.eval import Scope

SCOPE = Scope(objects=("a", "b"), max_seq_len=2)


def test_warm_run_is_byte_identical(tmp_path):
    cache = tmp_path / "cache"
    cold = verify_data_structure("ListSet", SCOPE, cache=cache)
    warm = verify_data_structure("ListSet", SCOPE, cache=cache)
    assert cold.all_verified
    assert repr(cold) == repr(warm)
    assert cold.summary() == warm.summary()
    assert cold.elapsed == warm.elapsed
    assert warm.cache_hits == len(warm.task_timings) == 36
    assert warm.cache_misses == 0
    assert all(r.cached for r in warm.results)


def test_cache_persists_across_processes_shape(tmp_path):
    """The on-disk JSON has the documented shape and survives reload."""
    cache = tmp_path / "cache"
    verify_data_structure("Accumulator", SCOPE, cache=cache)
    path = cache / "verify.json"
    data = json.loads(path.read_text())
    assert data["schema"] == SCHEMA
    entry = next(iter(data["entries"].values()))
    assert {"engine_version", "label", "kind", "backend", "elapsed",
            "results"} <= set(entry)
    # A fresh ResultCache object (fresh process in spirit) serves hits.
    warm = verify_data_structure("Accumulator", SCOPE, cache=cache)
    assert warm.cache_hits == len(warm.task_timings)


def test_failures_are_never_cached(tmp_path, register_scope):
    """A refuted obligation re-runs every time (fresh counterexamples)."""
    import register_fixture
    from repro.api import Registry
    from repro.commutativity import CommutativityCondition, Kind

    registry = Registry.with_builtins()
    registry.register_spec("Register", register_fixture.make_register_spec)

    def build(spec):
        return [CommutativityCondition(
            family="Register", m1="write", m2="write", kind=Kind.BEFORE,
            text="true", spec=spec)]  # unsound: writes rarely commute

    registry.register_conditions("Register", build)
    cache = tmp_path / "cache"
    first = verify_data_structure("Register", register_scope,
                                  registry=registry, cache=cache)
    assert not first.all_verified
    second = verify_data_structure("Register", register_scope,
                                   registry=registry, cache=cache)
    assert second.cache_hits == 0
    assert first == second  # same counterexamples, recomputed


def test_stale_engine_version_entries_ignored(tmp_path):
    cache_dir = tmp_path / "cache"
    verify_data_structure("Accumulator", SCOPE, cache=cache_dir)
    path = cache_dir / "verify.json"
    data = json.loads(path.read_text())
    for entry in data["entries"].values():
        entry["engine_version"] = 0  # an older engine wrote these
    path.write_text(json.dumps(data))
    warm = verify_data_structure("Accumulator", SCOPE, cache=cache_dir)
    assert warm.cache_hits == 0
    assert warm.cache_misses == len(warm.task_timings)


def test_truncated_entry_is_a_miss(tmp_path):
    """An entry with fewer results than the task's obligations must not
    silently shrink the report — it re-runs."""
    cache_dir = tmp_path / "cache"
    verify_data_structure("Accumulator", SCOPE, cache=cache_dir)
    path = cache_dir / "verify.json"
    data = json.loads(path.read_text())
    for entry in data["entries"].values():
        entry["results"] = entry["results"][:1]  # truncate (3 per pair)
    path.write_text(json.dumps(data))
    report = verify_data_structure("Accumulator", SCOPE, cache=cache_dir)
    assert report.condition_count == 12
    assert report.all_verified
    assert report.cache_hits == 0


def test_corrupt_cache_file_is_treated_as_empty(tmp_path):
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    (cache_dir / "verify.json").write_text("{not json")
    report = verify_data_structure("Accumulator", SCOPE, cache=cache_dir)
    assert report.all_verified and report.cache_hits == 0
    # And the run still repopulated a valid cache file.
    warm = verify_data_structure("Accumulator", SCOPE, cache=cache_dir)
    assert warm.cache_hits == len(warm.task_timings)


def test_mutated_condition_reverifies(tmp_path, register_scope):
    """Editing a condition's formula misses the cache; the rest hit."""
    from test_fingerprint import make_mutated_registry
    import register_fixture

    cache = tmp_path / "cache"
    original = register_fixture.make_register_registry()
    verify_data_structure("Register", register_scope, registry=original,
                          cache=cache)
    mutated = make_mutated_registry()
    report = verify_data_structure("Register", register_scope,
                                   registry=mutated, cache=cache)
    assert report.all_verified
    assert report.cache_misses == 1  # only the edited read;read pair
    assert report.cache_hits == 3


def test_inverse_results_cached(tmp_path):
    session = Session(scope=SCOPE, cache=tmp_path / "cache")
    cold = session.check_inverses()
    warm = session.check_inverses()
    assert len(cold) == 8
    assert [repr(r) for r in cold] == [repr(r) for r in warm]
    assert all(r.cached for r in warm)
    assert not any(r.cached for r in cold)


def test_verify_all_warm_run_identical(tmp_path):
    cache = tmp_path / "cache"
    scope = Scope(objects=("a", "b"), max_seq_len=1)
    cold = verify_all(scope, backend="symbolic", cache=cache)
    warm = verify_all(scope, backend="symbolic", cache=cache)
    assert set(cold) == set(warm)
    for name in cold:
        assert repr(cold[name]) == repr(warm[name])
        assert cold[name].summary() == warm[name].summary()
        assert warm[name].cache_hits == len(warm[name].task_timings)


def test_resultcache_resolve():
    assert ResultCache.resolve(None) is None
    assert ResultCache.resolve(False) is None
    default = ResultCache.resolve(True)
    assert isinstance(default, ResultCache)
    explicit = ResultCache.resolve("/tmp/x")
    assert isinstance(explicit, ResultCache)
    assert ResultCache.resolve(explicit) is explicit
