"""Parallel execution: identical results to serial runs, jobs
resolution, and the custom-registry fork path."""

import pytest

from repro.api import Session
from repro.commutativity.verifier import verify_all, verify_data_structure
from repro.engine import ParallelRunner, TaskPlanner, resolve_jobs
from repro.engine.runner import JOBS_ENV_VAR, _fork_available
from repro.eval import Scope
from repro.inverses.verifier import check_all_inverses

SCOPE = Scope(objects=("a", "b"), max_seq_len=2)


@pytest.mark.parametrize("backend", ["bounded", "symbolic"])
def test_parallel_equals_serial(backend):
    serial = verify_data_structure("ListSet", SCOPE, backend=backend,
                                   jobs=1)
    parallel = verify_data_structure("ListSet", SCOPE, backend=backend,
                                     jobs=2)
    assert serial == parallel
    assert serial.all_verified
    assert [r.condition.text for r in serial.results] \
        == [r.condition.text for r in parallel.results]


def test_parallel_equals_serial_on_failures(register_scope):
    """Counterexamples cross the process boundary intact."""
    import register_fixture
    from repro.api import Registry
    from repro.commutativity import CommutativityCondition, Kind

    registry = Registry.with_builtins()
    registry.register_spec("Register", register_fixture.make_register_spec)

    def build(spec):
        return [CommutativityCondition(
            family="Register", m1=m1, m2=m2, kind=Kind.BEFORE,
            text="true", spec=spec)
            for (m1, m2) in (("write", "write"), ("write", "read"))]

    registry.register_conditions("Register", build)
    serial = verify_data_structure("Register", register_scope,
                                   registry=registry, jobs=1)
    parallel = verify_data_structure("Register", register_scope,
                                     registry=registry, jobs=2)
    assert not serial.all_verified
    assert serial == parallel
    assert [r.counterexamples for r in serial.results] \
        == [r.counterexamples for r in parallel.results]


@pytest.mark.skipif(not _fork_available(),
                    reason="custom registries parallelize via fork")
def test_custom_registry_parallelizes_via_fork(register_registry,
                                               register_scope):
    session = Session(registry=register_registry, scope=register_scope,
                      cache=False)
    serial = session.verify("Register", jobs=1)
    parallel = session.verify("Register", jobs=2)
    assert serial == parallel and serial.all_verified


def test_verify_all_parallel_across_structures():
    serial = verify_all(SCOPE, backend="symbolic",
                        names=("Accumulator", "ListSet"), jobs=1)
    parallel = verify_all(SCOPE, backend="symbolic",
                          names=("Accumulator", "ListSet"), jobs=2)
    assert set(serial) == set(parallel)
    for name in serial:
        assert serial[name] == parallel[name]


def test_duplicate_names_are_deduplicated():
    reports = verify_all(SCOPE, names=("Accumulator", "Accumulator"))
    assert reports["Accumulator"].condition_count == 12
    from repro.engine import run_inverse_verification
    results = run_inverse_verification(SCOPE, names=("Set", "Set"))
    assert len(results) == 2  # add and remove, once each


def test_inverses_parallel_equals_serial():
    assert check_all_inverses(SCOPE, jobs=1) \
        == check_all_inverses(SCOPE, jobs=2)


def test_resolve_jobs_env(monkeypatch):
    monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(3) == 3
    monkeypatch.setenv(JOBS_ENV_VAR, "2")
    assert resolve_jobs(None) == 2
    assert resolve_jobs(1) == 1  # explicit beats the environment
    monkeypatch.setenv(JOBS_ENV_VAR, "not-a-number")
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) >= 1  # 0 = all CPUs


def test_runner_serial_for_single_task():
    plan = TaskPlanner().plan_verification(("Accumulator",), SCOPE,
                                           "bounded")
    single = [plan.tasks[0]]
    outcomes = ParallelRunner(jobs=8).run(single)
    assert len(outcomes) == 1 and outcomes[0].verified


def test_unknown_backend_rejected_before_running():
    with pytest.raises(ValueError):
        verify_data_structure("ListSet", SCOPE, backend="jahob", jobs=4)
