"""Engine test fixtures: reuse the custom Register structure of the
API tests so the sharded engine is exercised against a non-default,
closure-holding (unpicklable) registry too."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "api"))

from register_fixture import make_register_registry  # noqa: E402

from repro.api import Registry  # noqa: E402
from repro.eval import Scope  # noqa: E402


@pytest.fixture
def register_registry() -> Registry:
    return make_register_registry()


@pytest.fixture
def register_scope() -> Scope:
    return Scope(objects=("a", "b", "c"))
