"""Specification-layer tests: operation inventories, preconditions,
postcondition/semantics agreement."""

import pytest

from repro.eval import EvalContext, Record, Scope, evaluate
from repro.specs import PreconditionError, all_specs, get_spec
from repro.specs.registry import SPEC_FAMILIES


def test_operation_counts_match_paper():
    """2 + 6 + 7 + 9 operations => 765 conditions (Section 5.1)."""
    counts = {name: len(spec.operations)
              for name, spec in all_specs().items()}
    assert counts == {"Accumulator": 2, "Set": 6, "Map": 7, "ArrayList": 9}


def test_condition_arithmetic():
    counts = {"Accumulator": 2, "Set": 6, "Map": 7, "ArrayList": 9}
    total = (3 * counts["Accumulator"] ** 2
             + 2 * 3 * counts["Set"] ** 2
             + 2 * 3 * counts["Map"] ** 2
             + 3 * counts["ArrayList"] ** 2)
    assert total == 765


def test_family_aliases():
    assert get_spec("ListSet") is get_spec("HashSet")
    assert get_spec("AssociationList") is get_spec("HashTable")
    assert set(SPEC_FAMILIES) == {"Accumulator", "ListSet", "HashSet",
                                  "AssociationList", "HashTable",
                                  "ArrayList"}


def test_unknown_spec_rejected():
    with pytest.raises(KeyError):
        get_spec("BTree")


def test_discard_variants_marked():
    spec = get_spec("Set")
    assert spec.operations["add_"].base_name == "add"
    assert spec.operations["add_"].discards_result
    assert not spec.operations["add"].discards_result
    assert spec.operations["add_"].result_sort is None


def test_set_add_semantics():
    spec = get_spec("Set")
    state = spec.initial_state
    state, r = spec.execute(spec.operations["add"], state, ("a",))
    assert r is True and state["size"] == 1
    state, r = spec.execute(spec.operations["add"], state, ("a",))
    assert r is False and state["size"] == 1


def test_precondition_enforced():
    spec = get_spec("Set")
    with pytest.raises(PreconditionError):
        spec.execute(spec.operations["add"], spec.initial_state, (None,))


def test_arraylist_preconditions():
    spec = get_spec("ArrayList")
    empty = spec.initial_state
    assert spec.precondition_holds(spec.operations["add_at"], empty,
                                   (0, "a"))
    assert not spec.precondition_holds(spec.operations["add_at"], empty,
                                       (1, "a"))
    assert not spec.precondition_holds(spec.operations["get"], empty, (0,))


def test_map_put_returns_previous():
    spec = get_spec("Map")
    state = spec.initial_state
    state, r = spec.execute(spec.operations["put"], state, ("k", "x"))
    assert r is None
    state, r = spec.execute(spec.operations["put"], state, ("k", "y"))
    assert r == "x"
    state, r = spec.execute(spec.operations["remove"], state, ("k",))
    assert r == "y" and state["size"] == 0


def test_observe_rejects_mutators():
    spec = get_spec("Set")
    with pytest.raises(ValueError):
        spec.observe(spec.initial_state, "add", ("a",))


def test_invariants_hold_on_enumerated_states():
    scope = Scope(objects=("a", "b"), max_seq_len=2)
    for spec in all_specs().values():
        for state in spec.states(scope):
            assert spec.invariant(state)


@pytest.mark.parametrize("family", ["Accumulator", "Set", "Map",
                                    "ArrayList"])
def test_postconditions_hold_of_semantics(family, tiny_scope):
    """Every operation's postcondition formula is true of the transition
    its executable semantics produces (spec self-consistency)."""
    spec = get_spec(family)
    ctx = EvalContext(observe=spec.observe)
    for state in spec.states(tiny_scope):
        for op in spec.operations.values():
            if op.postcondition is None:
                continue
            for args in spec.arguments(op, tiny_scope):
                if not spec.precondition_holds(op, state, args):
                    continue
                new_state, result = op.semantics(state, args)
                env = {}
                for fname in spec.state_fields:
                    env[f"old_{fname}"] = state[fname]
                    env[fname] = new_state[fname]
                for param, value in zip(op.params, args):
                    env[param.name] = value
                if op.result_sort is not None:
                    env["result"] = result
                assert evaluate(op.postcondition, env, ctx), \
                    (family, op.name, state, args)


def test_semantics_preserve_invariant(tiny_scope):
    for spec in all_specs().values():
        for state in spec.states(tiny_scope):
            for op in spec.operations.values():
                for args in spec.arguments(op, tiny_scope):
                    if not spec.precondition_holds(op, state, args):
                        continue
                    new_state, _ = op.semantics(state, args)
                    assert spec.invariant(new_state)


def test_initial_states():
    assert get_spec("Set").initial_state["contents"] == frozenset()
    assert get_spec("Map").initial_state["size"] == 0
    assert get_spec("ArrayList").initial_state["elems"] == ()
    assert get_spec("Accumulator").initial_state == Record(value=0)
