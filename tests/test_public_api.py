"""Top-level public API and CLI tests."""

import pytest

import repro
from repro.__main__ import main


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """CLI verify/inverses cache to ./.repro-cache by default; keep each
    test's cache in its own directory so runs stay fresh and the repo
    root stays clean."""
    monkeypatch.chdir(tmp_path)


def test_version():
    assert repro.__version__ == "1.2.0"


def test_public_names_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_total_condition_count_exported():
    assert repro.total_condition_count() == 765


def test_cli_show(capsys):
    assert main(["show", "--name", "HashSet", "--m1", "contains",
                 "--m2", "add", "--kind", "between", "--methods"]) == 0
    out = capsys.readouterr().out
    assert "v1 ~= v2 | r1" in out
    assert "contains_add_between_s_" in out


def test_cli_verify_one(capsys):
    assert main(["verify", "--name", "Accumulator"]) == 0
    out = capsys.readouterr().out
    assert "Accumulator" in out and "all verified" in out


def test_cli_inverses(capsys):
    assert main(["inverses", "--max-seq-len", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("verified") == 8


def test_cli_tables_single(capsys):
    assert main(["tables", "--table", "5.10"]) == 0
    out = capsys.readouterr().out
    assert "s2.increase(-v)" in out


def test_cli_tables_unknown(capsys):
    assert main(["tables", "--table", "9.9"]) == 2


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("Accumulator", "ListSet", "HashSet", "AssociationList",
                 "HashTable", "ArrayList"):
        assert name in out
    assert "765 conditions" in out
    assert "8 inverse operations" in out


def test_cli_list_sees_injected_registry(capsys):
    from repro.api import Registry
    from repro.specs.interface import DataStructureSpec

    registry = Registry.with_builtins()
    registry.register_spec(
        "Register",
        DataStructureSpec(
            name="Register", state_fields={}, principal_field=None,
            operations={}, initial_state=None, invariant=lambda s: True,
            states=lambda scope: iter(()),
            arguments=lambda op, scope: iter(())))
    assert main(["list"], registry=registry) == 0
    out = capsys.readouterr().out
    assert "Register" in out
    assert "7 structures" in out


def test_cli_show_unknown_structure_is_friendly(capsys):
    assert main(["show", "--name", "HashSte", "--m1", "add",
                 "--m2", "add"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "HashSet" in err  # near-miss suggestion
    assert "Traceback" not in err


def test_cli_show_unknown_operation_is_friendly(capsys):
    assert main(["show", "--name", "HashSet", "--m1", "bogus",
                 "--m2", "add"]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "bogus" in err
    assert "Traceback" not in err


def test_cli_verify_unknown_name_exits_2(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["verify", "--name", "BTree"])
    assert excinfo.value.code == 2


def test_end_to_end_workflow(tiny_scope):
    """The README workflow: look up, verify (both backends), generate
    methods, run speculatively, roll back."""
    from repro import (Kind, check_condition, condition, conditions_for,
                      SpeculativeExecutor)
    from repro.solver.engine import check_condition_symbolic
    from repro.specs import get_spec

    cond = condition("HashSet", "contains", "add", Kind.BETWEEN)
    spec = get_spec("HashSet")
    assert check_condition(spec, cond, tiny_scope).verified
    assert check_condition_symbolic(spec, cond).verified
    assert len(conditions_for("HashSet")) == 108

    report = SpeculativeExecutor("HashSet").run(
        [[("add", ("a",))], [("add", ("b",))]])
    assert report.serializable
