"""Top-level public API and CLI tests."""

import pytest

import repro
from repro.__main__ import main


def test_version():
    assert repro.__version__ == "1.0.0"


def test_public_names_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_total_condition_count_exported():
    assert repro.total_condition_count() == 765


def test_cli_show(capsys):
    assert main(["show", "--name", "HashSet", "--m1", "contains",
                 "--m2", "add", "--kind", "between", "--methods"]) == 0
    out = capsys.readouterr().out
    assert "v1 ~= v2 | r1" in out
    assert "contains_add_between_s_" in out


def test_cli_verify_one(capsys):
    assert main(["verify", "--name", "Accumulator"]) == 0
    out = capsys.readouterr().out
    assert "Accumulator" in out and "all verified" in out


def test_cli_inverses(capsys):
    assert main(["inverses", "--max-seq-len", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("verified") == 8


def test_cli_tables_single(capsys):
    assert main(["tables", "--table", "5.10"]) == 0
    out = capsys.readouterr().out
    assert "s2.increase(-v)" in out


def test_cli_tables_unknown(capsys):
    assert main(["tables", "--table", "9.9"]) == 2


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_end_to_end_workflow(tiny_scope):
    """The README workflow: look up, verify (both backends), generate
    methods, run speculatively, roll back."""
    from repro import (Kind, check_condition, condition, conditions_for,
                      SpeculativeExecutor)
    from repro.solver.engine import check_condition_symbolic
    from repro.specs import get_spec

    cond = condition("HashSet", "contains", "add", Kind.BETWEEN)
    spec = get_spec("HashSet")
    assert check_condition(spec, cond, tiny_scope).verified
    assert check_condition_symbolic(spec, cond).verified
    assert len(conditions_for("HashSet")) == 108

    report = SpeculativeExecutor("HashSet").run(
        [[("add", ("a",))], [("add", ("b",))]])
    assert report.serializable
