"""Scope enumeration tests."""

from repro.eval import (Scope, partial_maps, sequences, subsets,
                        argument_tuples)


def test_subsets_count():
    assert sum(1 for _ in subsets(("a", "b", "c"))) == 8
    assert frozenset() in set(subsets(("a", "b")))


def test_partial_maps_count():
    # Each of 2 keys is absent or one of 2 values: (2+1)^2 = 9.
    maps = list(partial_maps(("k1", "k2"), ("x", "y")))
    assert len(maps) == 9
    assert len(set(maps)) == 9


def test_sequences_count():
    seqs = list(sequences(("a", "b"), 3))
    assert len(seqs) == 1 + 2 + 4 + 8
    assert () in seqs


def test_argument_tuples():
    combos = list(argument_tuples((1, 2), ("a",)))
    assert combos == [(1, "a"), (2, "a")]


def test_scope_smaller():
    scope = Scope().smaller()
    assert len(scope.objects) == 2
    assert scope.max_seq_len == 2
