"""Interpreter tests over the full node set."""

import pytest

from repro.eval import EvalContext, EvalError, FMap, Record, evaluate
from repro.logic import parse_formula, parse_term
from repro.logic.sorts import Sort
from repro.logic.symbols import SymbolTable

TABLE = SymbolTable(
    vars={"p": Sort.BOOL, "x": Sort.INT, "y": Sort.INT,
          "v": Sort.OBJ, "u": Sort.OBJ,
          "S": Sort.SET, "T": Sort.SET, "m": Sort.MAP, "s": Sort.SEQ,
          "st": Sort.STATE},
    state_fields={"contents": Sort.SET, "size": Sort.INT},
    observers={"contains": ((Sort.OBJ,), Sort.BOOL)},
    principal_field="contents",
)

ENV = {
    "p": True, "x": 2, "y": 5, "v": "a", "u": "b",
    "S": frozenset({"a", "b"}), "T": frozenset({"b"}),
    "m": FMap({"a": "x"}), "s": ("a", "b", "a"),
    "st": Record(contents=frozenset({"a"}), size=1),
}


def ev(text, env=None):
    term = parse_term(text, TABLE)
    return evaluate(term, env or ENV)


@pytest.mark.parametrize("text,expected", [
    ("p & x < y", True),
    ("~p | x = 2", True),
    ("x + y - 1", 6),
    ("-x", -2),
    ("v : S", True),
    ("u ~: T", False),
    ("S Un T", frozenset({"a", "b"})),
    ("S - T", frozenset({"a"})),
    ("card(S)", 2),
    ("{v, u}", frozenset({"a", "b"})),
    ("lookup(m, v)", "x"),
    ("lookup(m, u)", None),
    ("haskey(m, v)", True),
    ("msize(m)", 1),
    ("len(s)", 3),
    ("at(s, 0)", "a"),
    ("idx(s, v)", 0),
    ("lidx(s, v)", 2),
    ("idx(s, u)", 1),
    ("has(s, u)", True),
    ("ins(s, 1, u)", ("a", "b", "b", "a")),
    ("del_(s, 0)", ("b", "a")),
    ("upd(s, 2, u)", ("a", "b", "b")),
    ("mput(m, u, u)", FMap({"a": "x", "b": "b"})),
    ("mdel(m, v)", FMap()),
    ("keys(m)", frozenset({"a"})),
    ("v ~= null", True),
])
def test_evaluation_examples(text, expected):
    assert ev(text) == expected


def test_field_access():
    assert ev("st.size") == 1
    assert ev("v : st") is True


def test_observer_dispatch():
    calls = []

    def observe(state, method, args):
        calls.append((method, args))
        return args[0] in state["contents"]

    term = parse_formula("st.contains(v)", TABLE)
    assert evaluate(term, ENV, EvalContext(observe=observe)) is True
    assert calls == [("contains", ("a",))]


def test_observer_without_dispatcher_raises():
    term = parse_formula("st.contains(v)", TABLE)
    with pytest.raises(EvalError):
        evaluate(term, ENV)


def test_unbound_variable():
    with pytest.raises(EvalError):
        ev("zz" if False else "x + 1", {"y": 1})


def test_seq_index_out_of_range():
    with pytest.raises(EvalError):
        ev("at(s, 7)")


def test_quantifier_exists_over_indices():
    assert ev("EX i. 0 <= i & i < len(s) & at(s, i) = u") is True
    assert ev("EX i. 0 <= i & i < len(s) & at(s, i) = at(s, i) "
              "& x + 3 < i") is False


def test_quantifier_forall():
    assert ev("ALL i. (0 <= i & i < len(s)) --> at(s, i) : S") is True


def test_quantifier_obj_domain():
    assert ev("EX o::obj. o : S & o ~: T") is True
    assert ev("ALL o::obj. o : T --> o : S") is True


def test_and_short_circuits_partiality():
    # Guarded out-of-range access must not raise.
    assert ev("EX i. 0 <= i & i < len(s) & at(s, i) = v") is True


def test_explicit_domains():
    ctx = EvalContext(int_domain=(0, 1), obj_domain=("a",))
    term = parse_formula("EX i. i = 5", TABLE)
    assert evaluate(term, ENV, ctx) is False


def test_iff_and_ite():
    assert ev("p <-> x = 2") is True
    from repro.logic import terms as t
    ite = t.Ite(t.Var("p", Sort.BOOL), t.IntConst(1), t.IntConst(2))
    assert evaluate(ite, ENV) == 1
