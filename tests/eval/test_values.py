"""Value-domain tests: FMap, Record, sequence helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.eval.values import (FMap, Record, seq_index_of, seq_insert,
                               seq_last_index_of, seq_remove, seq_update)


def test_fmap_basic():
    m = FMap({"a": "x"})
    assert m["a"] == "x"
    assert m.lookup("b") is None
    assert len(m) == 1
    assert "a" in m


def test_fmap_put_is_functional():
    m = FMap()
    m2 = m.put("a", "x")
    assert len(m) == 0
    assert m2.lookup("a") == "x"


def test_fmap_remove():
    m = FMap({"a": "x", "b": "y"})
    m2 = m.remove("a")
    assert "a" not in m2 and "b" in m2
    assert m.remove("zz") is m  # no-op returns self


def test_fmap_equality_and_hash():
    assert FMap({"a": "x"}) == FMap({"a": "x"})
    assert hash(FMap({"a": "x"})) == hash(FMap({"a": "x"}))
    assert FMap({"a": "x"}) != FMap({"a": "y"})


def test_record_fields_and_replace():
    r = Record(contents=frozenset({"a"}), size=1)
    assert r["size"] == 1
    r2 = r.replace(size=2)
    assert r["size"] == 1 and r2["size"] == 2
    assert set(r) == {"contents", "size"}


def test_record_equality_hash():
    a = Record(x=1, y=2)
    b = Record(y=2, x=1)
    assert a == b
    assert hash(a) == hash(b)


@pytest.mark.parametrize("seq,value,first,last", [
    ((), "a", -1, -1),
    (("a",), "a", 0, 0),
    (("a", "b", "a"), "a", 0, 2),
    (("b", "b"), "a", -1, -1),
])
def test_index_of(seq, value, first, last):
    assert seq_index_of(seq, value) == first
    assert seq_last_index_of(seq, value) == last


def test_insert_remove_update():
    s = ("a", "b", "c")
    assert seq_insert(s, 0, "x") == ("x", "a", "b", "c")
    assert seq_insert(s, 3, "x") == ("a", "b", "c", "x")
    assert seq_remove(s, 1) == ("a", "c")
    assert seq_update(s, 2, "x") == ("a", "b", "x")


# -- property-based invariants ----------------------------------------------

elements = st.sampled_from(("a", "b", "c"))
sequences = st.lists(elements, max_size=6).map(tuple)


@given(sequences, elements, st.integers(0, 6))
def test_insert_then_remove_roundtrip(seq, v, i):
    i = min(i, len(seq))
    assert seq_remove(seq_insert(seq, i, v), i) == seq


@given(sequences, elements)
def test_index_of_agrees_with_membership(seq, v):
    assert (seq_index_of(seq, v) >= 0) == (v in seq)
    if v in seq:
        assert seq[seq_index_of(seq, v)] == v
        assert seq[seq_last_index_of(seq, v)] == v
        assert seq_index_of(seq, v) <= seq_last_index_of(seq, v)


@given(st.dictionaries(st.sampled_from("abc"), st.sampled_from("xyz")))
def test_fmap_mirrors_dict(data):
    m = FMap(data)
    assert dict(m.items()) == data
    for k, v in data.items():
        assert m.lookup(k) == v
