"""Session facade: the custom-structure end-to-end round trip and the
pipeline entry points over the default registry."""

import pytest

from repro.api import Session, UnknownNameError
from repro.commutativity import Kind

from register_fixture import REGISTER_CONDITIONS


def test_session_defaults_to_default_registry():
    session = Session()
    cond = session.condition("HashSet", "contains", "add", Kind.BETWEEN)
    assert cond.text == "v1 ~= v2 | r1"
    assert len(session.conditions("HashSet")) == 108
    assert session.spec("HashSet").name == "Set"


def test_custom_spec_round_trip(register_registry, register_scope):
    """Registry.register_spec -> Session.verify/check_inverses, exactly
    like a built-in."""
    session = Session(registry=register_registry, scope=register_scope)
    report = session.verify("Register")
    assert report.all_verified
    assert report.condition_count == 12

    results = session.check_inverses("Register")
    assert len(results) == 1
    assert results[0].verified and results[0].cases > 0

    cond = session.condition("Register", "write", "read", Kind.BEFORE)
    assert cond.text == REGISTER_CONDITIONS[("write", "read")]


def test_session_verify_builtin(tiny_scope):
    session = Session(scope=tiny_scope)
    report = session.verify("Accumulator")
    assert report.all_verified and report.condition_count == 12


def test_session_verify_all_subset(tiny_scope):
    session = Session(scope=tiny_scope)
    reports = session.verify_all(names=("Accumulator",))
    assert set(reports) == {"Accumulator"}
    assert reports["Accumulator"].all_verified


def test_session_verify_all_includes_custom(register_registry,
                                            register_scope):
    session = Session(registry=register_registry, scope=register_scope)
    reports = session.verify_all(names=("Accumulator", "Register"))
    assert reports["Register"].all_verified


def test_session_check_all_inverses(register_registry, register_scope):
    session = Session(registry=register_registry, scope=register_scope)
    results = session.check_inverses()
    # Table 5.10's eight plus the Register's one.
    assert len(results) == 9
    assert all(r.verified for r in results)


def test_session_synthesize(register_registry, register_scope):
    session = Session(registry=register_registry, scope=register_scope)
    result = session.synthesize(
        "Register", "write", "read", Kind.BEFORE, ["s1.value = v1"])
    assert result.succeeded
    assert result.text == "s1.value = v1"


def test_session_executor_for_builtin():
    session = Session()
    report = session.executor("HashSet").run(
        [[("add", ("a",))], [("add", ("b",))]])
    assert report.serializable


def test_session_executor_without_implementation(register_registry):
    session = Session(registry=register_registry)
    with pytest.raises(UnknownNameError):
        session.executor("Register")


def test_session_unknown_structure():
    session = Session()
    with pytest.raises(UnknownNameError):
        session.verify("BTree")
