"""Shared helpers for the registry/session API tests: a tiny custom
Register structure (single cell; ``write`` returns the overwritten
value)."""

from typing import Any, Iterator

from repro.api import Registry
from repro.commutativity import CommutativityCondition, Kind
from repro.eval import Record, Scope
from repro.inverses import Arg, Guard, InverseCall, InverseSpec
from repro.logic.sorts import Sort
from repro.specs.interface import (DataStructureSpec, Operation, Param,
                                   parse_pre)

STATE_FIELDS = {"value": Sort.OBJ}

#: Sound-and-complete before conditions (valid for every kind because
#: they only mention before-vocabulary variables).
REGISTER_CONDITIONS = {
    ("write", "write"): "v1 = v2 & s1.value = v1",
    ("write", "read"): "s1.value = v1",
    ("read", "write"): "s1.value = v2",
    ("read", "read"): "true",
}


def _write(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    return Record(value=v), state["value"]


def _read(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    return state, state["value"]


def _states(scope: Scope) -> Iterator[Record]:
    for v in scope.objects:
        yield Record(value=v)


def _arguments(op: Operation, scope: Scope) -> Iterator[tuple[Any, ...]]:
    if op.params:
        for v in scope.objects:
            yield (v,)
    else:
        yield ()


def make_register_spec() -> DataStructureSpec:
    params = (Param("v", Sort.OBJ),)
    operations = {
        "write": Operation(
            name="write", params=params, result_sort=Sort.OBJ,
            precondition=parse_pre("v ~= null", STATE_FIELDS, params,
                                   {}, None),
            semantics=_write, mutator=True),
        "read": Operation(
            name="read", params=(), result_sort=Sort.OBJ,
            precondition=parse_pre("true", STATE_FIELDS, (), {}, None),
            semantics=_read, mutator=False),
    }
    return DataStructureSpec(
        name="Register", state_fields=dict(STATE_FIELDS),
        principal_field=None, operations=operations,
        initial_state=Record(value="init"),
        invariant=lambda state: True,
        states=_states, arguments=_arguments)


def build_register_conditions(spec: DataStructureSpec) \
        -> list[CommutativityCondition]:
    return [CommutativityCondition(family="Register", m1=m1, m2=m2,
                                   kind=kind, text=text, spec=spec)
            for (m1, m2), text in REGISTER_CONDITIONS.items()
            for kind in Kind]


REGISTER_INVERSES = (InverseSpec(
    family="Register", op="write", guard=Guard.NONE,
    then=(InverseCall("write", (Arg.result(),)),)),)


def make_register_registry() -> Registry:
    """A fresh registry with the six built-ins plus a fully registered
    Register (spec + conditions + inverse)."""
    registry = Registry.with_builtins()
    registry.register_spec("Register", make_register_spec)
    registry.register_conditions("Register", build_register_conditions)
    registry.register_inverses("Register", REGISTER_INVERSES)
    return registry
