"""Fixtures for the registry/session API tests."""

import pytest

from repro.api import Registry
from repro.eval import Scope

from register_fixture import make_register_registry


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Session() caches to ./.repro-cache by default; run each API test
    in its own directory so verification always executes fresh and the
    repo root stays clean."""
    monkeypatch.chdir(tmp_path)


@pytest.fixture
def register_registry() -> Registry:
    return make_register_registry()


@pytest.fixture
def register_scope() -> Scope:
    return Scope(objects=("a", "b", "c"))
