"""Fixtures for the registry/session API tests."""

import pytest

from repro.api import Registry
from repro.eval import Scope

from register_fixture import make_register_registry


@pytest.fixture
def register_registry() -> Registry:
    return make_register_registry()


@pytest.fixture
def register_scope() -> Scope:
    return Scope(objects=("a", "b", "c"))
