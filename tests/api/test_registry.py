"""Registry registration, alias resolution, caching isolation, and the
back-compat wrappers over the default registry."""

import pytest

from repro.api import (DEFAULT_REGISTRY, DuplicateNameError, Registry,
                       UnknownNameError)
from repro.commutativity import Kind
from repro.commutativity.catalog import (condition, conditions_for,
                                         total_condition_count)
from repro.inverses.catalog import inverse_for, inverses_for
from repro.specs import get_spec

from register_fixture import make_register_spec


def test_default_registry_population():
    assert DEFAULT_REGISTRY.names() == (
        "Accumulator", "ListSet", "HashSet", "AssociationList",
        "HashTable", "ArrayList")
    assert DEFAULT_REGISTRY.families() == (
        "Accumulator", "Set", "Map", "ArrayList")
    assert DEFAULT_REGISTRY.total_condition_count() == 765


def test_alias_resolution():
    registry = Registry.with_builtins()
    assert registry.family_of("HashSet") == "Set"
    assert registry.family_of("Set") == "Set"
    assert registry.spec("ListSet") is registry.spec("HashSet")
    assert registry.spec("ListSet") is registry.spec("Set")
    assert "HashSet" in registry and "BTree" not in registry


def test_registration_basics():
    registry = Registry()
    registry.register_spec("Register", make_register_spec)
    assert registry.names() == ("Register",)
    assert registry.spec("Register").name == "Register"
    # The spec is built once and cached per registry.
    assert registry.spec("Register") is registry.spec("Register")


def test_register_spec_accepts_instance():
    registry = Registry()
    spec = make_register_spec()
    registry.register_spec("Register", spec)
    assert registry.spec("Register") is spec


def test_datastructure_decorator():
    registry = Registry()

    @registry.datastructure("Register")
    def build():
        return make_register_spec()

    assert registry.names() == ("Register",)
    assert registry.spec("Register").name == "Register"


def test_duplicate_names_rejected():
    registry = Registry()
    registry.register_spec("Register", make_register_spec)
    with pytest.raises(DuplicateNameError):
        registry.register_spec("Register", make_register_spec)
    registry2 = Registry.with_builtins()
    with pytest.raises(DuplicateNameError):
        registry2.register_spec("HashSet", make_register_spec)
    with pytest.raises(DuplicateNameError):
        registry2.register_alias("ListSet", "Set")
    with pytest.raises(DuplicateNameError):
        registry2.register_conditions("Set", lambda spec: [])
    with pytest.raises(DuplicateNameError):
        registry2.register_inverses("Set", [])
    with pytest.raises(DuplicateNameError):
        registry2.register_implementation("HashSet", object)


def test_failed_registration_leaves_registry_untouched():
    """A rejected register_spec must not half-register the family."""
    registry = Registry.with_builtins()
    before = registry.names()
    with pytest.raises(DuplicateNameError):
        registry.register_spec("Deque", make_register_spec,
                               aliases=("MyDeque", "ArrayList"))
    assert registry.names() == before
    assert "Deque" not in registry and "MyDeque" not in registry
    # A corrected retry now succeeds.
    registry.register_spec("Deque", make_register_spec,
                           aliases=("MyDeque",))
    assert "MyDeque" in registry


def test_inverses_for_unknown_name_is_empty():
    """Historical contract: unknown names have no inverses."""
    assert inverses_for("Stack") == []


def test_alias_requires_known_family():
    registry = Registry()
    with pytest.raises(UnknownNameError):
        registry.register_alias("MySet", "Set")


def test_independent_instances_do_not_share_caches():
    r1 = Registry.with_builtins()
    r2 = Registry.with_builtins()
    assert r1.spec("Set") is not r2.spec("Set")
    c1 = r1.conditions("HashSet")
    c2 = r2.conditions("HashSet")
    assert c1[0] is not c2[0]
    # Both catalogs embed their own registry's spec, not a global one.
    assert c1[0].spec is r1.spec("Set")
    assert c2[0].spec is r2.spec("Set")
    assert r1.spec("Set") is not DEFAULT_REGISTRY.spec("Set")


def test_unknown_names_raise_with_suggestions():
    with pytest.raises(UnknownNameError) as excinfo:
        DEFAULT_REGISTRY.spec("HashSte")
    assert "HashSet" in excinfo.value.suggestions
    assert isinstance(excinfo.value, KeyError)  # back-compat contract
    assert isinstance(excinfo.value, ValueError)
    with pytest.raises(UnknownNameError) as excinfo:
        DEFAULT_REGISTRY.condition("HashSet", "bogus", "add", Kind.BETWEEN)
    assert "operation" in str(excinfo.value)
    with pytest.raises(UnknownNameError):
        DEFAULT_REGISTRY.inverse("HashSet", "contains")
    with pytest.raises(UnknownNameError):
        DEFAULT_REGISTRY.implementation("Set")  # family has no impl


def test_conditions_accept_literal_iterable(register_registry):
    registry = Registry()
    registry.register_spec("Register", make_register_spec)
    registry.register_conditions(
        "Register", register_registry.conditions("Register"))
    assert len(registry.conditions("Register")) == 12


def test_backcompat_wrappers_delegate_to_default_registry():
    assert get_spec("HashSet") is DEFAULT_REGISTRY.spec("HashSet")
    assert conditions_for("HashSet")[0] is \
        DEFAULT_REGISTRY.conditions("HashSet")[0]
    assert condition("HashSet", "contains", "add", Kind.BETWEEN) is \
        DEFAULT_REGISTRY.condition("HashSet", "contains", "add",
                                   Kind.BETWEEN)
    assert total_condition_count() == 765
    assert inverses_for("HashSet") == DEFAULT_REGISTRY.inverses("Set")
    assert inverse_for("HashSet", "add") is \
        DEFAULT_REGISTRY.inverse("Set", "add")


def test_describe_rows(register_registry):
    rows = {entry.name: entry for entry in register_registry.describe()}
    assert rows["Register"].family == "Register"
    assert rows["Register"].condition_count == 12
    assert rows["Register"].inverse_count == 1
    assert rows["Register"].implementation is None
    assert rows["HashSet"].condition_count == 108
    assert rows["HashSet"].implementation.__name__ == "HashSet"


def test_duplicate_alias_within_one_call_leaves_registry_untouched():
    registry = Registry.with_builtins()
    with pytest.raises(DuplicateNameError):
        registry.register_spec("Cell", make_register_spec,
                               aliases=("X", "X"))
    assert "Cell" not in registry and "X" not in registry
    # A corrected retry succeeds (no half-registered leftovers).
    registry.register_spec("Cell", make_register_spec, aliases=("X",))
    assert "X" in registry
