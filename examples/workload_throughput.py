"""Workloads + throughput: measuring how much concurrency each
conflict-detection policy admits.

The paper's claim (Chapter 1) is quantitative: verified semantic
commutativity conditions admit far more concurrency than read/write
conflict detection, and verified inverses make exploiting it safe.
This example generates seeded, deterministic workloads (op-mix profile
x key distribution) over a shared key space, sweeps them through the
speculative executor under all three gatekeeper policies, and prints
the policy-comparison table — then re-runs one workload through the
batched multi-worker executor to show the same programs surviving a
genuinely nondeterministic interleaving.

Run:  python examples/workload_throughput.py
"""

from repro.api import Session
from repro.reporting import policy_comparison_table
from repro.workloads import DEFAULT_WORKLOADS, ThroughputHarness

# The canonical sweep specs, so the printed rows cross-reference the
# identically-labelled entries in BENCH_runtime.json.
WORKLOADS = DEFAULT_WORKLOADS[:2]


def main() -> None:
    harness = ThroughputHarness()
    runs = harness.sweep(structures=("HashSet", "HashTable", "ArrayList"),
                         workloads=WORKLOADS)
    for run in runs:
        assert run.serializable, run.summary()
    print(policy_comparison_table(runs))

    print("\n=== multi-worker execution (same generated programs) ===")
    session = Session()
    for workers in (1, 4):
        report = session.run_workload(
            "HashSet", WORKLOADS[0], policy="commutativity",
            workers=workers)
        assert report.serializable
        print(f"  workers={workers}: {report.summary()} "
              f"({report.ops_per_second:,.0f} ops/s; "
              f"transactions ever aborted: "
              f"{report.ever_aborted or 'none'})")

    print("\nThe verified conditions admit interleavings read/write "
          "detection rejects on every structure,\nand the multi-worker "
          "executor keeps each nondeterministic interleaving "
          "serializable.")


if __name__ == "__main__":
    main()
