"""Extending the system to a user-defined data structure.

A downstream user brings their own abstract specification — here a
single-cell ``Register`` with ``write(v)`` (returns the previous value)
and ``read()`` — registers it on a :class:`repro.api.Registry` next to
the paper's six built-ins, then drives the whole pipeline through a
:class:`repro.api.Session`:

1. *synthesize* sound-and-complete commutativity conditions directly
   from the executable semantics,
2. verify a hand-written condition with the bounded checker,
3. register the synthesized catalog and the inverse of ``write`` and
   verify them exactly like a built-in (``session.verify`` /
   ``session.check_inverses``), and
4. see the Register listed by the ``python -m repro list`` CLI.

No monkey-patching anywhere: the registry owns all name resolution.

Run:  python examples/custom_datastructure.py
"""

from typing import Any, Iterator

from repro.__main__ import main as repro_main
from repro.api import Registry, Session
from repro.commutativity import (CommutativityCondition, Kind,
                                 check_condition)
from repro.eval import Record, Scope
from repro.inverses import Arg, Guard, InverseCall, InverseSpec
from repro.logic.sorts import Sort
from repro.specs.interface import (DataStructureSpec, Operation, Param,
                                   parse_pre)

STATE_FIELDS = {"value": Sort.OBJ}


def _write(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    return Record(value=v), state["value"]


def _read(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    return state, state["value"]


def _states(scope: Scope) -> Iterator[Record]:
    for v in scope.objects:
        yield Record(value=v)


def _arguments(op: Operation, scope: Scope) -> Iterator[tuple[Any, ...]]:
    if op.params:
        for v in scope.objects:
            yield (v,)
    else:
        yield ()


def make_register_spec() -> DataStructureSpec:
    params = (Param("v", Sort.OBJ),)
    operations = {
        "write": Operation(
            name="write", params=params, result_sort=Sort.OBJ,
            precondition=parse_pre("v ~= null", STATE_FIELDS, params,
                                   {}, None),
            semantics=_write, mutator=True),
        "read": Operation(
            name="read", params=(), result_sort=Sort.OBJ,
            precondition=parse_pre("true", STATE_FIELDS, (), {}, None),
            semantics=_read, mutator=False),
    }
    return DataStructureSpec(
        name="Register", state_fields=dict(STATE_FIELDS),
        principal_field=None, operations=operations,
        initial_state=Record(value="init"),
        invariant=lambda state: True,
        states=_states, arguments=_arguments)


def main() -> None:
    # The Register joins the paper's six structures on a private
    # registry; DEFAULT_REGISTRY is untouched.
    registry = Registry.with_builtins()
    registry.register_spec("Register", make_register_spec)
    session = Session(registry=registry, scope=Scope(objects=("a", "b", "c")))

    # 1. Synthesize conditions from the semantics alone.
    print("synthesized sound-and-complete before conditions:")
    synthesized: dict[tuple[str, str], str] = {}
    for m1, m2, atom_texts in (
            ("write", "write", ["v1 = v2", "s1.value = v1",
                                "s1.value = v2"]),
            ("write", "read", ["s1.value = v1"]),
            ("read", "write", ["s1.value = v2"]),
            ("read", "read", [])):
        result = session.synthesize("Register", m1, m2, Kind.BEFORE,
                                    atom_texts)
        assert result.succeeded, (m1, m2)
        synthesized[(m1, m2)] = result.text
        print(f"  {m1}; {m2}: {result.text}")

    # 2. Verify hand-written conditions the classical way.  A natural
    # first guess — "writes of equal values commute" — is actually
    # UNSOUND because write returns the overwritten value, and the
    # checker produces the counterexample:
    spec = session.spec("Register")
    guess = CommutativityCondition(
        family="Register", m1="write", m2="write", kind=Kind.BEFORE,
        text="v1 = v2", spec=spec)
    outcome = check_condition(spec, guess, session.scope)
    print(f"\nnaive write;write condition: {outcome.summary()}")
    assert not outcome.verified
    print(f"  counterexample: {outcome.counterexamples[0]}")

    # The repaired condition also pins the overwritten value:
    cond = CommutativityCondition(
        family="Register", m1="write", m2="write", kind=Kind.BEFORE,
        text="v1 = v2 & s1.value = v1", spec=spec)
    outcome = check_condition(spec, cond, session.scope)
    print(f"repaired write;write condition: {outcome.summary()}")
    assert outcome.verified

    # 3. Register the synthesized catalog (a before-vocabulary formula
    # is evaluable at every kind) and the inverse of write, then verify
    # the Register exactly like a built-in.
    def build_register_conditions(spec: DataStructureSpec) \
            -> list[CommutativityCondition]:
        return [CommutativityCondition(family="Register", m1=m1, m2=m2,
                                       kind=kind, text=text, spec=spec)
                for (m1, m2), text in synthesized.items()
                for kind in Kind]

    registry.register_conditions("Register", build_register_conditions)
    registry.register_inverses("Register", [InverseSpec(
        family="Register", op="write", guard=Guard.NONE,
        then=(InverseCall("write", (Arg.result(),)),))])

    report = session.verify("Register")
    print(f"\n{report.summary()}")
    assert report.all_verified

    for result in session.check_inverses("Register"):
        print(result.summary())
        assert result.verified

    # 4. The CLI sees the Register like any built-in.
    print("\n$ python -m repro list")
    repro_main(["list"], registry=registry)


if __name__ == "__main__":
    main()
