"""Extending the system to a user-defined data structure.

A downstream user brings their own abstract specification — here a
single-cell ``Register`` with ``write(v)`` (returns the previous value)
and ``read()`` — then:

1. *synthesizes* sound-and-complete commutativity conditions directly
   from the executable semantics (the synthesizer the repository uses to
   cross-validate its own catalog),
2. verifies a hand-written condition with the bounded checker, and
3. specifies and verifies an inverse for ``write``.

Run:  python examples/custom_datastructure.py
"""

from typing import Any, Iterator

from repro.commutativity.bounded import check_condition
from repro.commutativity.conditions import CommutativityCondition, Kind
from repro.commutativity.synthesis import parse_atoms, synthesize
from repro.eval import Record, Scope
from repro.inverses.catalog import Arg, Guard, InverseCall, InverseSpec
from repro.inverses.verifier import check_inverse
from repro.logic.sorts import Sort
from repro.specs.interface import (DataStructureSpec, Operation, Param,
                                   parse_pre)

STATE_FIELDS = {"value": Sort.OBJ}


def _write(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    (v,) = args
    return Record(value=v), state["value"]


def _read(state: Record, args: tuple[Any, ...]) -> tuple[Record, Any]:
    return state, state["value"]


def _states(scope: Scope) -> Iterator[Record]:
    for v in scope.objects:
        yield Record(value=v)


def _arguments(op: Operation, scope: Scope) -> Iterator[tuple[Any, ...]]:
    if op.params:
        for v in scope.objects:
            yield (v,)
    else:
        yield ()


def make_register_spec() -> DataStructureSpec:
    params = (Param("v", Sort.OBJ),)
    operations = {
        "write": Operation(
            name="write", params=params, result_sort=Sort.OBJ,
            precondition=parse_pre("v ~= null", STATE_FIELDS, params,
                                   {}, None),
            semantics=_write, mutator=True),
        "read": Operation(
            name="read", params=(), result_sort=Sort.OBJ,
            precondition=parse_pre("true", STATE_FIELDS, (), {}, None),
            semantics=_read, mutator=False),
    }
    return DataStructureSpec(
        name="Register", state_fields=dict(STATE_FIELDS),
        principal_field=None, operations=operations,
        initial_state=Record(value="init"),
        invariant=lambda state: True,
        states=_states, arguments=_arguments)


def main() -> None:
    spec = make_register_spec()
    scope = Scope(objects=("a", "b", "c"))

    # 1. Synthesize conditions from the semantics alone.
    print("synthesized sound-and-complete before conditions:")
    for m1, m2, atom_texts in (
            ("write", "write", ["v1 = v2", "s1.value = v1",
                                "s1.value = v2"]),
            ("write", "read", ["s1.value = v1"]),
            ("read", "write", ["s1.value = v2"]),
            ("read", "read", [])):
        atoms = parse_atoms(spec, m1, m2, atom_texts)
        result = synthesize(spec, m1, m2, Kind.BEFORE, atoms, scope)
        assert result.succeeded, (m1, m2)
        print(f"  {m1}; {m2}: {result.text}")

    # 2. Verify hand-written conditions the classical way.  A natural
    # first guess — "writes of equal values commute" — is actually
    # UNSOUND because write returns the overwritten value, and the
    # checker produces the counterexample:
    guess = CommutativityCondition(
        family="Register", m1="write", m2="write", kind=Kind.BEFORE,
        text="v1 = v2", spec=spec)
    outcome = check_condition(spec, guess, scope)
    print(f"\nnaive write;write condition: {outcome.summary()}")
    assert not outcome.verified
    print(f"  counterexample: {outcome.counterexamples[0]}")

    # The repaired condition also pins the overwritten value:
    cond = CommutativityCondition(
        family="Register", m1="write", m2="write", kind=Kind.BEFORE,
        text="v1 = v2 & s1.value = v1", spec=spec)
    outcome = check_condition(spec, cond, scope)
    print(f"repaired write;write condition: {outcome.summary()}")
    assert outcome.verified

    # 3. The inverse of write(v) re-writes the returned previous value.
    inverse = InverseSpec(family="Register", op="write", guard=Guard.NONE,
                          then=(InverseCall("write", (Arg.result(),)),))
    print(f"\ninverse of write(v): {inverse.render()}")

    def register_states(s: Scope) -> Iterator[Record]:
        return _states(s)

    # check_inverse resolves specs by family name; monkey-patch lookup
    # is unnecessary — call the verifier core directly.
    from repro.inverses import verifier as inv_verifier
    original_get_spec = inv_verifier.get_spec
    inv_verifier.get_spec = lambda name: spec if name == "Register" \
        else original_get_spec(name)
    try:
        result = check_inverse("Register", inverse, scope)
    finally:
        inv_verifier.get_spec = original_get_spec
    print(result.summary())
    assert result.verified


if __name__ == "__main__":
    main()
