"""Abduction end-to-end: a custom structure no earlier machinery helps.

``RegisterCell`` is a single overwrite cell — ``write(v)`` returns the
overwritten value, ``read()`` the current one — registered through the
public extension API with **no shard router**.  Its sound-and-complete
between conditions all read ``s1``, so every pre-abduction rung is
structurally blind to it:

- the projector finds no arg/result-only disjunct,
- the footprint analyzer has no router to license argument relations,
- the symbolic prover classifies the custom family ``unsupported``,
- and at run time the conservative fallback's router oracle — absent —
  admits *nothing* under drift.

The CEGIS loop of ``repro.abduction`` closes the gap from the atom
alphabet alone:

    fragile pair ──▶ frontier of atom conjunctions (weakest first)
        │  bounded re-verifier sweeps a frontier round per batch
        │  violating observations ──▶ countermodel store (prunes free)
        │  prover screen: refuted candidates disarmed + strengthened
        ▼
    armed abduced conditions ──▶ ``synthesized`` tier in the guard

This example registers the cell, synthesizes its conditions (e.g.
``write;write`` arms ``(v1 = v2) & (v2 = r1)`` — overwriting the value
already there, twice), and shows the runtime win on a hot-key
write-heavy workload: synthesized admissions appear, conservative
fallbacks drop, and the execution stays identical to its serial replay.

Run:  python examples/abduced_custom_structure.py
"""

from repro.abduction import DEMO_FAMILY, make_demo_registry
from repro.api import Session
from repro.reporting import drift_admission_table, stability_table
from repro.workloads import ThroughputHarness, WorkloadSpec

HOT_WRITES = WorkloadSpec(
    name="hotkey-register", profile="write-heavy",
    distribution="hot-key", transactions=12, ops_per_transaction=6,
    key_space=24, value_space=3, seed=9)


def main() -> None:
    session = Session(registry=make_demo_registry())

    print("=== 1. verify: the custom cell through the standard calls ===")
    report = session.verify(DEMO_FAMILY, backend="bounded")
    assert report.all_verified
    print(f"  {report.summary()}")

    print("\n=== 2. abduce: CEGIS synthesis over the atom lattice ===")
    reports = session.abduce_stable([DEMO_FAMILY])
    cell = reports[DEMO_FAMILY]
    print(f"  {cell.summary()}")
    assert cell.synthesized_count > 0, \
        "abduction must synthesize conditions the projector cannot"
    print(stability_table(reports))
    for pair in cell.pairs:
        if pair.synthesis:
            stats = pair.synthesis
            print(f"  {pair.pair_label}: checked {stats['checked']}, "
                  f"pruned {stats['pruned']} by countermodels, "
                  f"armed {stats['armed']} over {stats['rounds']} "
                  f"rounds -> {pair.stable_text}")

    print("\n=== 3. run: routerless fallback vs synthesized guard ===")
    harness = ThroughputHarness(registry=session.registry)
    plain = harness.run_one(DEMO_FAMILY, HOT_WRITES, workers=1)
    armed = harness.run_one(DEMO_FAMILY, HOT_WRITES, workers=1,
                            stable=True)
    assert plain.serializable and armed.serializable
    # No router: the conservative oracle admits nothing under drift...
    assert plain.report.fallback_admits == 0
    assert plain.report.synthesized_hits == 0
    # ...while the abduced conditions admit semantically.
    assert armed.report.synthesized_hits > 0
    assert armed.drift_fallbacks < plain.drift_fallbacks
    print(drift_admission_table([plain, armed]))
    print(f"  {DEMO_FAMILY}: conservative fallbacks "
          f"{plain.drift_fallbacks} -> {armed.drift_fallbacks} "
          f"({armed.report.synthesized_hits} drifted checks admitted "
          f"through synthesized conditions)")

    print("\n=== 4. flat and sharded synthesized decisions are "
          "identical ===")
    flat = session.run_workload(DEMO_FAMILY, HOT_WRITES, shards=1,
                                stable=True)
    sharded = session.run_workload(DEMO_FAMILY, HOT_WRITES, shards=4,
                                   stable=True)
    assert flat.commit_order == sharded.commit_order
    assert flat.aborts == sharded.aborts
    print(f"  flat:    {flat.summary()}")
    print(f"  sharded: {sharded.summary()}")


if __name__ == "__main__":
    main()
