"""Regenerate the paper's evaluation: verify all 765 commutativity
conditions (1530 testing methods) and all 8 inverse operations, then
print Tables 5.1-5.10.

Run:  python examples/verify_catalog.py [--backend symbolic|bounded]
"""

import argparse

from repro.commutativity import total_condition_count
from repro.eval import paper_scope
from repro.inverses import check_all_inverses
from repro.proof import check_all_scripts
from repro.reporting import (table_5_01, table_5_02, table_5_03,
                             table_5_04, table_5_05, table_5_06,
                             table_5_07, table_5_08, table_5_09,
                             table_5_10)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="symbolic",
                        choices=("symbolic", "bounded"))
    parser.add_argument("--max-seq-len", type=int, default=3)
    args = parser.parse_args()
    scope = paper_scope(max_seq_len=args.max_seq_len)

    print(f"catalog size: {total_condition_count()} conditions "
          f"(paper: 765)\n")

    for table_id, render in (("5.1", table_5_01), ("5.2", table_5_02),
                             ("5.3", table_5_03), ("5.4", table_5_04),
                             ("5.5", table_5_05), ("5.6", table_5_06),
                             ("5.7", table_5_07)):
        print(f"=== Table {table_id} ===")
        print(render())
        print()

    print(f"=== Table 5.8 (backend: {args.backend}) ===")
    text, reports = table_5_08(scope, backend=args.backend)
    print(text)
    failures = [r for r in reports.values() if not r.all_verified]
    print()

    print("=== Table 5.9 ===")
    for outcome in check_all_scripts():
        print(" ", outcome.summary())
    print(table_5_09())
    print()

    print("=== Table 5.10 ===")
    print(table_5_10())
    for result in check_all_inverses(scope):
        print(" ", result.summary())

    if failures:
        raise SystemExit(f"{len(failures)} data structures failed!")
    print("\nall conditions and inverses verified.")


if __name__ == "__main__":
    main()
