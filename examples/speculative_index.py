"""Domain scenario: a parallel document indexer over shared linked data
structures.

This is the workload shape the paper's introduction motivates (irregular
parallel computations over shared sets/maps [29, 30, 31]): worker
transactions tokenize documents and update a shared HashTable index
(token -> document id) and a shared HashSet of seen tokens.  Most
operations touch different keys, so they *semantically* commute — but
every insertion rewrites linked structure, so read/write conflict
detection serializes the whole thing.

The speculative executor uses the verified between conditions for
admission and the verified inverses for rollback, and we compare the
abort counts of the three gatekeeper policies.

Run:  python examples/speculative_index.py
"""

import random

from repro.runtime import SpeculativeExecutor

DOCUMENTS = {
    "d1": "the quick brown fox jumps over the lazy dog",
    "d2": "a stitch in time saves nine",
    "d3": "the early bird catches the worm",
    "d4": "brown bears fish in the quick river",
    "d5": "time and tide wait for no one",
    "d6": "every dog has its day",
}


def build_transactions(seed: int = 11):
    """One transaction per document: record unseen tokens."""
    rng = random.Random(seed)
    programs = []
    for doc_id, text in DOCUMENTS.items():
        tokens = list(dict.fromkeys(text.split()))
        rng.shuffle(tokens)
        ops = []
        for token in tokens[:6]:
            ops.append(("contains", (token,)))
            ops.append(("add", (token,)))
        programs.append(ops)
    return programs


def build_map_transactions(seed: int = 13):
    """Presence index: mark tokens as seen.  ``put`` operations with the
    same key commute exactly when their values agree (Table 5.4), so
    idempotent marking commutes across documents."""
    rng = random.Random(seed)
    programs = []
    for doc_id, text in DOCUMENTS.items():
        tokens = list(dict.fromkeys(text.split()))
        rng.shuffle(tokens)
        # The discard variant put_ has the weaker commutativity
        # condition k1 ~= k2 | v1 = v2 (Table 5.4): idempotent marking
        # commutes even on shared tokens.
        ops = [("put_", (token, "seen")) for token in tokens[:5]]
        ops.append(("containsKey", (tokens[0],)))
        programs.append(ops)
    return programs


def main() -> None:
    print("=== shared token set (HashSet) ===")
    programs = build_transactions()
    for policy in ("commutativity", "read-write", "mutex"):
        report = SpeculativeExecutor("HashSet", policy, seed=2,
                                     max_rounds=100000).run(programs)
        print(f"  {policy:<14} {report.summary()}")
        assert report.serializable

    print("\n=== shared index (HashTable) ===")
    programs = build_map_transactions()
    for policy in ("commutativity", "read-write", "mutex"):
        report = SpeculativeExecutor("HashTable", policy, seed=2,
                                     max_rounds=100000).run(programs)
        print(f"  {policy:<14} {report.summary()}")
        assert report.serializable

    print("\nVerified commutativity conditions admit interleavings that "
          "classical conflict detection rejects,\nwhile the verified "
          "inverses keep every abort recoverable — and every run "
          "serializable.")


if __name__ == "__main__":
    main()
