"""Sharded conflict management + contention-adaptive policies.

The verified between conditions tell us statically *which* operations
interact: Set/Map operations by key, ArrayList operations by index
band, Accumulator increases by amount.  The sharded gatekeeper turns
that interaction structure into a partition of the outstanding-
operation log — one log and one lock per region — so admission checks
on non-interacting operations skip each other's regions entirely
instead of scanning one flat list under one lock.

This example shows the three layers:

1. flat vs sharded execution of the same deterministic workload —
   identical admission decisions at ``workers=1`` (the sharded manager
   only ever skips unconditionally-commuting pairs), with the per-shard
   contention table showing where the checks landed;
2. multi-worker throughput, flat single-lock vs per-shard locking, on a
   preloaded (YCSB-style load phase) workload;
3. the contention-adaptive policies on a hot-key write-heavy workload:
   exponential backoff, wait-die ordering, and the hybrid policy that
   starts speculating and falls back to blocking per tripped shard.

Run:  python examples/sharded_throughput.py
"""

from repro.api import Session
from repro.reporting import shard_contention_table
from repro.workloads import (BENCH_WORKLOADS, SCALING_WORKLOADS,
                             ThroughputHarness)

HOTKEY = next(w for w in BENCH_WORKLOADS
              if w.label == "write-heavy-hotkey")


def main() -> None:
    session = Session()
    harness = ThroughputHarness(max_rounds=500_000)

    print("=== 1. flat vs sharded: identical decisions at workers=1 ===")
    flat = session.run_workload("HashSet", HOTKEY, shards=1)
    sharded = session.run_workload("HashSet", HOTKEY, shards=4)
    assert flat.serializable and sharded.serializable
    assert flat.commit_order == sharded.commit_order
    assert flat.aborts == sharded.aborts
    print(f"  flat:    {flat.summary()}")
    print(f"  sharded: {sharded.summary()}")
    run = harness.run_one("HashSet", HOTKEY, shards=4)
    print(shard_contention_table([run]))

    print("\n=== 2. multi-worker: flat single lock vs per-shard locks ===")
    workload = SCALING_WORKLOADS[0]
    for shards in (1, 4):
        report = session.run_workload(
            "HashSet", workload, policy="commutativity",
            conflict_mode="block", workers=4, shards=shards)
        assert report.serializable
        mode = "flat log, one lock" if shards == 1 \
            else "4 shards, per-shard locks"
        print(f"  {mode}: "
              f"{report.committed_ops_per_second:,.0f} committed ops/s "
              f"({report.conflict_checks} checks)")

    print("\n=== 3. contention-adaptive policies (hot-key workload) ===")
    plain = harness.run_one("HashSet", HOTKEY, workers=1)
    print(f"  plain commutativity: {plain.aborts} aborts")
    for adaptive in ("backoff", "wait-die", "hybrid"):
        run = harness.run_one("HashSet", HOTKEY, workers=1,
                              adaptive=adaptive)
        assert run.serializable
        print(f"  {adaptive:>9}: {run.aborts} aborts")

    print("\nThe sharded gatekeeper admits non-interacting operations "
          "without scanning one global\nlist under one lock, and the "
          "adaptive policies stop abort storms from re-executing\n"
          "doomed prefixes — the conditions tell the runtime which "
          "regions interact.")


if __name__ == "__main__":
    main()
