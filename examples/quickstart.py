"""Quickstart: verify a commutativity condition and an inverse operation.

Reproduces the paper's worked example (Chapter 2): the between
commutativity condition for ``contains(v1); add(v2)`` on a HashSet —
``v1 ~= v2 | r1`` — and the inverse of ``add(v)``.

Run:  python examples/quickstart.py
"""

from repro import HashSet, Kind, Scope, check_condition, condition
from repro.commutativity import generate_methods
from repro.inverses import check_inverse, inverse_for
from repro.solver.engine import check_condition_symbolic
from repro.specs import get_spec


def main() -> None:
    # 1. The condition from Figure 2-2.
    cond = condition("HashSet", "contains", "add", Kind.BETWEEN)
    print(f"condition: {cond}")

    # 2. The generated testing methods (Figure 2-2's two methods).
    soundness, completeness = generate_methods([cond])
    print("\n--- generated soundness testing method ---")
    print(soundness.render_java())
    print("\n--- generated completeness testing method ---")
    print(completeness.render_java())

    # 3. Verify with both backends: exhaustive within a scope, and
    #    symbolically for unbounded initial states.
    spec = get_spec("HashSet")
    bounded = check_condition(spec, cond, Scope())
    print(f"\nbounded backend:  {bounded.summary()}")
    symbolic = check_condition_symbolic(spec, cond)
    print(f"symbolic backend: {symbolic.summary()}")
    assert bounded.verified and symbolic.verified

    # 4. Commuting operations really do produce different concrete
    #    states with the same abstract state (Section 1.1).
    s1, s2 = HashSet(), HashSet()
    s1.add("a"); s1.add("e")      # "a" and "e" share a hash bucket
    s2.add("e"); s2.add("a")
    print(f"\nabstract states equal: "
          f"{s1.abstract_state() == s2.abstract_state()}")
    print(f"concrete layouts equal: "
          f"{s1.concrete_shape() == s2.concrete_shape()}")

    # 5. The verified inverse of add(v) (Figure 2-3 / Table 5.10).
    inverse = inverse_for("HashSet", "add")
    print(f"\ninverse of add(v): {inverse.render()}")
    result = check_inverse("HashSet", inverse, Scope())
    print(result.summary())
    assert result.verified


if __name__ == "__main__":
    main()
