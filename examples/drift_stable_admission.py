"""Drift-stable admission: semantic commutativity that survives state
drift.

The between conditions are verified against a fixed environment: ``s2``
is the state immediately after the logged operation ran.  The drift
guard (PR 4) therefore refuses any state-referencing condition once
other operations have executed — sound, but conservative exactly where
contention is highest: hot-key Set/Map pairs and preloaded ArrayList
index pairs fall back to the shard-router oracle.

The stability compiler (``repro.stability``) closes that gap offline:

    verified between conditions
        │  projector: arg/result-only disjuncts
        │  footprint: router-derived argument relations, r1 links
        ▼
    candidate weakenings ──quantified re-verifier──▶ drift-stable
                                                     conditions
        ▼
    Registry.register_stable_conditions  ──▶  gatekeeper drift guard

This example compiles the catalog, shows a few verdicts, and measures
the runtime effect on a write-heavy hot-key workload over a *preloaded*
ArrayList and HashTable: with ``stable=True`` the drift guard tries the
compiled condition before the conservative oracle, strictly reducing
conservative fallbacks while every execution stays identical to its
serial replay.

Run:  python examples/drift_stable_admission.py
"""

from repro.api import Session
from repro.reporting import drift_admission_table, stability_table
from repro.workloads import ThroughputHarness, WorkloadSpec

HOT_PRELOADED = WorkloadSpec(
    name="hotkey-preloaded", profile="write-heavy",
    distribution="hot-key", transactions=12, ops_per_transaction=6,
    key_space=24, value_space=3, preload=20, seed=5)


def main() -> None:
    session = Session()

    print("=== 1. compile: verified conditions -> stability verdicts ===")
    reports = session.compile_stable(["HashTable", "ArrayList"])
    for report in reports.values():
        print(f"  {report.summary()}")
    showcase = [p for p in reports["ArrayList"].pairs
                if p.pair_label in ("add_at;get", "add_at;add_at",
                                    "get;set")]
    print(stability_table({"ArrayList": type(reports["ArrayList"])(
        name="ArrayList", family="ArrayList", pairs=showcase)}))

    print("\n=== 2. run: plain drift guard vs --stable ===")
    harness = ThroughputHarness(registry=session.registry)
    runs = []
    for structure in ("ArrayList", "HashTable"):
        plain = harness.run_one(structure, HOT_PRELOADED, workers=1,
                                shards=4)
        stable = harness.run_one(structure, HOT_PRELOADED, workers=1,
                                 shards=4, stable=True)
        runs += [plain, stable]
        assert plain.serializable and stable.serializable
        assert stable.stable_hits > 0
        assert stable.drift_fallbacks < plain.drift_fallbacks
        print(f"  {structure}: conservative fallbacks "
              f"{plain.drift_fallbacks} -> {stable.drift_fallbacks} "
              f"({stable.stable_hits} drifted checks admitted "
              f"semantically)")
    print()
    print(drift_admission_table(runs))

    print("\n=== 3. flat and sharded stable decisions are identical ===")
    flat = session.run_workload("ArrayList", HOT_PRELOADED, shards=1,
                                stable=True)
    sharded = session.run_workload("ArrayList", HOT_PRELOADED, shards=4,
                                   stable=True)
    assert flat.commit_order == sharded.commit_order
    assert flat.aborts == sharded.aborts
    print(f"  flat:    {flat.summary()}")
    print(f"  sharded: {sharded.summary()}")


if __name__ == "__main__":
    main()
