"""Benchmark for Table 5.8: verification time for all 765 commutativity
conditions (1530 testing methods) per data structure.

The paper reports Jahob wall-clock times (Accumulator 0.8s ... ArrayList
12m18s, dominated by prover timeouts on the 57 hard methods).  We report
our symbolic backend (unbounded base states) and the bounded exhaustive
backend side by side.  The shape to preserve: every data structure
verifies, ArrayList dominates the total, Accumulator is trivial.
"""

from __future__ import annotations

from repro.commutativity import verify_all
from repro.reporting import table_5_08


def _verify(backend, scope):
    reports = verify_all(scope, backend=backend)
    assert all(r.all_verified for r in reports.values())
    return reports


def test_symbolic_backend_all_765(benchmark, paper_scope):
    reports = benchmark(_verify, "symbolic", paper_scope)
    text, _ = table_5_08(paper_scope, backend="symbolic")
    print("\n=== Table 5.8 (symbolic backend) ===")
    print(text)
    slowest = max(reports.values(), key=lambda r: r.elapsed)
    assert slowest.name == "ArrayList"  # same dominance as the paper


def test_bounded_backend_all_765(benchmark, paper_scope):
    reports = benchmark.pedantic(_verify, args=("bounded", paper_scope),
                                 rounds=1, iterations=1)
    print("\n=== Table 5.8 (bounded exhaustive backend) ===")
    for name, report in reports.items():
        print(report.summary())
    assert sum(r.condition_count for r in reports.values()) == 765
    assert sum(r.method_count for r in reports.values()) == 1530
