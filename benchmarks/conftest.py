"""Benchmark configuration: each benchmark regenerates one table or
figure of the paper's evaluation chapter and prints the rows."""

import pytest

from repro.eval import Scope


@pytest.fixture(scope="session")
def paper_scope() -> Scope:
    """The verification scope used for headline numbers."""
    return Scope(objects=("a", "b", "c"), values=("x", "y"),
                 ints=(-2, -1, 0, 1, 2), max_seq_len=3)
