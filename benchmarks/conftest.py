"""Benchmark configuration: each benchmark regenerates one table or
figure of the paper's evaluation chapter and prints the rows."""

import pytest

from repro.eval import Scope, paper_scope as canonical_paper_scope


@pytest.fixture(scope="session", name="paper_scope")
def paper_scope_fixture() -> Scope:
    """The verification scope used for headline numbers — the canonical
    :func:`repro.eval.paper_scope`, not an ad-hoc copy."""
    return canonical_paper_scope()
