#!/usr/bin/env python
"""Sanity-check a bench JSON artifact before CI uploads it.

The bench legs gate on sections of the payload (the ``compiled_gate``
keys of ``BENCH_runtime.json``, the identity/latency sections of
``BENCH_service.json``), and a refactor of the bench driver could
silently drop or rename one — the upload would still succeed and the
regression gate would be vacuous.  This checker fails the leg
instead::

    python benchmarks/check_schema.py BENCH_runtime.json --require-compiled-gate
    python benchmarks/check_schema.py BENCH_service.json

The payload's ``suite`` field dispatches the validation
(``runtime``/``service``).  ``--require-compiled-gate`` asserts the
runtime suite's compiled-vs-interpreted section is present with every
per-structure gate key; without the flag the section is validated only
when present (legs that run without ``--compiled``).
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys

#: Per-structure keys of ``compiled_gate.structures`` entries — the
#: exact fields the CI gate and the diagnosing engineer read.
GATE_ENTRY_KEYS = {
    "interpreted_committed_ops_per_second": numbers.Real,
    "compiled_committed_ops_per_second": numbers.Real,
    "speedup": numbers.Real,
    "compiled_hits": int,
    "eval_errors": int,
    "decisions_identical": bool,
}

TOP_LEVEL_KEYS = {
    "schema": int,
    "suite": str,
    "workers": int,
    "shards": int,
    "structures": dict,
    "workloads": dict,
    "wall_seconds": numbers.Real,
}

#: Aggregate keys of the ``abduction_gate`` section — the armed-delta,
#: fallback-delta, and digest-identity facts the ``--abduce`` CI leg
#: gates on.
ABDUCTION_GATE_KEYS = {
    "policy": str,
    "shards": int,
    "compiled": dict,
    "structures": dict,
    "baseline_semantic_hits": int,
    "abduced_semantic_hits": int,
    "baseline_hit_rate": numbers.Real,
    "abduced_hit_rate": numbers.Real,
    "armed_hits_delta": numbers.Real,
    "fallback_delta": int,
    "digests_identical": bool,
    "warm_cache_served": bool,
}

#: Per-structure keys of ``abduction_gate.structures`` entries.
ABDUCTION_ENTRY_KEYS = {
    "workload": str,
    "baseline_hits": int,
    "baseline_fallbacks": int,
    "abduced_stable_hits": int,
    "abduced_proved_hits": int,
    "synthesized_hits": int,
    "abduced_fallbacks": int,
    "fallback_admits": int,
    "flat_sharded_identical": bool,
    "local_served_identical": bool,
}


def _check_keys(mapping, spec, where, problems):
    for key, kind in spec.items():
        if key not in mapping:
            problems.append(f"{where}: missing key {key!r}")
        elif not isinstance(mapping[key], kind) \
                or isinstance(mapping[key], bool) and kind is not bool:
            problems.append(
                f"{where}: {key!r} is {type(mapping[key]).__name__}, "
                f"expected {getattr(kind, '__name__', kind)}")


#: Top-level keys of a ``BENCH_service.json`` payload.
SERVICE_TOP_LEVEL_KEYS = {
    "schema": int,
    "suite": str,
    "protocol_version": int,
    "shards": int,
    "service_workers": int,
    "cluster_axis": list,
    "identity": dict,
    "throughput": dict,
    "metrics": dict,
    "wall_seconds": numbers.Real,
}

#: Keys of one soak deployment leg (``soak.single`` / ``soak.cluster``).
SOAK_LEG_KEYS = {
    "structure": str,
    "workload": str,
    "point_seconds": numbers.Real,
    "ramp": list,
    "points": list,
    "truncated": bool,
    "errors": list,
}

#: Keys of one measured soak ramp point.
SOAK_POINT_KEYS = {
    "clients": int,
    "runs": int,
    "domain_reuses": int,
    "committed_operations": int,
    "wall_seconds": numbers.Real,
    "committed_ops_per_second": numbers.Real,
    "latency_ms": dict,
    "errors": list,
}

#: Keys of a soak knee.
SOAK_KNEE_KEYS = {
    "clients": int,
    "committed_ops_per_second": numbers.Real,
    "latency_p95_ms": numbers.Real,
}


def _check_soak(soak, problems: list[str]) -> None:
    """Validation of the ``--soak`` section: both deployment legs must
    have measured points and a knee, and the cluster's knee must have
    beaten the single process's."""
    if not isinstance(soak, dict):
        problems.append(f"soak: {type(soak).__name__}, expected object")
        return
    _check_keys(soak, {"cluster_workers": int,
                       "point_seconds": numbers.Real,
                       "single": dict, "cluster": dict,
                       "cluster_beats_single": bool}, "soak", problems)
    for label in ("single", "cluster"):
        leg = soak.get(label)
        if not isinstance(leg, dict):
            continue
        where = f"soak.{label}"
        _check_keys(leg, SOAK_LEG_KEYS, where, problems)
        points = leg.get("points")
        if isinstance(points, list):
            if not points:
                problems.append(f"{where}: no ramp points were "
                                f"measured")
            for i, point in enumerate(points):
                if not isinstance(point, dict):
                    problems.append(f"{where}.points[{i}]: not an "
                                    f"object")
                    continue
                _check_keys(point, SOAK_POINT_KEYS,
                            f"{where}.points[{i}]", problems)
        knee = leg.get("knee")
        if not isinstance(knee, dict):
            problems.append(f"{where}: knee is {knee!r} — the ramp "
                            f"never measured a best point")
        else:
            _check_keys(knee, SOAK_KNEE_KEYS, f"{where}.knee",
                        problems)
        if leg.get("errors"):
            problems.append(f"{where}: soak client errors: "
                            + "; ".join(map(str, leg["errors"])))
    if soak.get("cluster_beats_single") is False:
        problems.append("soak: the cluster knee did not beat the "
                        "single-process knee")

#: Per-worker keys of the service throughput section.
SERVICE_WORKER_KEYS = {
    "worker": int,
    "structure": str,
    "workload": str,
    "commits": int,
    "aborts": int,
    "committed_operations": int,
    "wall_seconds": numbers.Real,
    "admission_rpcs": int,
    "latency_ms": dict,
    "serializable": bool,
}


def check_service_payload(payload, require_soak: bool = False
                          ) -> list[str]:
    """Validation of a ``BENCH_service.json`` payload: the identity
    leg must exist and hold (across the single-process *and* cluster
    digests), the throughput leg must cover >= 2 client worker
    processes with real latency percentiles, the metrics scrape must
    have exposed every counter, and — when present or required — the
    soak section must report a knee per deployment with the cluster
    beating the single process."""
    problems: list[str] = []
    _check_keys(payload, SERVICE_TOP_LEVEL_KEYS, "payload", problems)
    identity = payload.get("identity")
    if not identity:
        problems.append("payload: identity section is empty — the "
                        "digest gate compared nothing")
    elif isinstance(identity, dict):
        for name, entry in sorted(identity.items()):
            where = f"identity[{name!r}]"
            if not isinstance(entry, dict):
                problems.append(f"{where}: not an object")
                continue
            _check_keys(entry, {"workload": str, "local_digest": str,
                                "service_digest": str,
                                "cluster_digests": dict,
                                "identical": bool,
                                "admission_rpcs": int},
                        where, problems)
            cluster_digests = entry.get("cluster_digests")
            if isinstance(cluster_digests, dict) and not cluster_digests:
                problems.append(f"{where}: cluster_digests is empty — "
                                f"the cluster legs compared nothing")
            if entry.get("identical") is False:
                problems.append(f"{where}: served or cluster decisions "
                                f"diverged from local ones")
    throughput = payload.get("throughput")
    if isinstance(throughput, dict):
        _check_keys(throughput, {"workers": int,
                                 "committed_operations": int,
                                 "committed_ops_per_second":
                                     numbers.Real,
                                 "wall_seconds": numbers.Real,
                                 "admission_rpcs": int,
                                 "latency_ms": dict,
                                 "per_worker": list},
                    "throughput", problems)
        if isinstance(throughput.get("workers"), int) \
                and throughput["workers"] < 2:
            problems.append(f"throughput: only "
                            f"{throughput['workers']} client workers "
                            f"— the cross-process claim needs >= 2")
        per_worker = throughput.get("per_worker")
        if isinstance(per_worker, list):
            if len(per_worker) < 2:
                problems.append(f"throughput: only {len(per_worker)} "
                                f"per-worker results — expected >= 2")
            for i, entry in enumerate(per_worker):
                where = f"throughput.per_worker[{i}]"
                if not isinstance(entry, dict):
                    problems.append(f"{where}: not an object")
                    continue
                _check_keys(entry, SERVICE_WORKER_KEYS, where, problems)
        latency = throughput.get("latency_ms")
        if isinstance(latency, dict):
            for q in ("p50", "p95"):
                value = latency.get(q)
                if not isinstance(value, numbers.Real) \
                        or isinstance(value, bool) or value <= 0:
                    problems.append(f"throughput.latency_ms: {q} is "
                                    f"{value!r}, expected > 0")
        if throughput.get("errors"):
            problems.append("throughput: client worker errors: "
                            + "; ".join(map(str, throughput["errors"])))
    metrics = payload.get("metrics")
    if isinstance(metrics, dict) and metrics.get("ok") is not True:
        problems.append(f"metrics: scrape not ok ({metrics})")
    soak = payload.get("soak")
    if soak is None:
        if require_soak:
            problems.append("payload: soak section is missing (leg "
                            "ran without --soak?)")
    else:
        _check_soak(soak, problems)
    return problems


def _check_abduction_gate(gate, problems: list[str]) -> None:
    """Validation of the ``abduction_gate`` section: the aggregate
    armed-delta / fallback-delta keys, the per-structure hit and digest
    facts, and the identities themselves (a present-but-failed gate
    must not pass the schema check)."""
    if not isinstance(gate, dict):
        problems.append(f"abduction_gate is {type(gate).__name__}, "
                        f"expected object")
        return
    _check_keys(gate, ABDUCTION_GATE_KEYS, "abduction_gate", problems)
    structures = gate.get("structures")
    if not structures:
        problems.append("abduction_gate: structures is empty — the "
                        "gate compared nothing")
        return
    for name, entry in sorted(structures.items()):
        where = f"abduction_gate.structures[{name!r}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        _check_keys(entry, ABDUCTION_ENTRY_KEYS, where, problems)
    if gate.get("digests_identical") is False:
        problems.append("abduction_gate: sharded or served abduced "
                        "decisions diverged from local flat ones")
    if gate.get("warm_cache_served") is False:
        problems.append("abduction_gate: the warm rerun recomputed "
                        "ABDUCTION tasks instead of serving the cache")


def check_payload(payload, require_compiled_gate: bool = False,
                  require_soak: bool = False,
                  require_abduction_gate: bool = False) -> list[str]:
    """Every problem found, as human-readable strings (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected object"]
    if payload.get("suite") == "service":
        return check_service_payload(payload, require_soak=require_soak)
    _check_keys(payload, TOP_LEVEL_KEYS, "payload", problems)
    if payload.get("suite") not in (None, "runtime"):
        problems.append(f"payload: suite is {payload['suite']!r}, "
                        f"expected 'runtime' or 'service'")
    if not payload.get("structures"):
        problems.append("payload: structures is empty — the sweep ran "
                        "nothing")
    abduction = payload.get("abduction_gate")
    if abduction is None:
        if require_abduction_gate:
            problems.append("payload: abduction_gate section is "
                            "missing (leg ran without --abduce?)")
    else:
        _check_abduction_gate(abduction, problems)
    gate = payload.get("compiled_gate")
    if gate is None:
        if require_compiled_gate:
            problems.append("payload: compiled_gate section is missing "
                            "(leg ran without --compiled?)")
        return problems
    if not isinstance(gate, dict):
        return problems + [
            f"compiled_gate is {type(gate).__name__}, expected object"]
    _check_keys(gate, {"workload": str, "policy": str, "workers": int,
                       "shards": int, "repeats": int,
                       "structures": dict}, "compiled_gate", problems)
    structures = gate.get("structures")
    if not structures:
        problems.append("compiled_gate: structures is empty — the gate "
                        "compared nothing")
        return problems
    sharded = isinstance(gate.get("shards"), int) and gate["shards"] > 1
    for name, entry in sorted(structures.items()):
        where = f"compiled_gate.structures[{name!r}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        _check_keys(entry, GATE_ENTRY_KEYS, where, problems)
        if sharded:
            _check_keys(entry, {"flat_sharded_identical": bool}, where,
                        problems)
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="path to BENCH_runtime.json")
    parser.add_argument("--require-compiled-gate", action="store_true",
                        help="fail when the compiled_gate section is "
                             "absent (legs that ran --compiled)")
    parser.add_argument("--require-soak", action="store_true",
                        help="fail when the service suite's soak "
                             "section is absent (legs that ran --soak)")
    parser.add_argument("--require-abduction-gate", action="store_true",
                        help="fail when the runtime suite's "
                             "abduction_gate section is absent (legs "
                             "that ran --abduce)")
    args = parser.parse_args(argv)
    try:
        with open(args.report, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"check_schema: unreadable {args.report}: {exc}",
              file=sys.stderr)
        return 2
    problems = check_payload(
        payload, require_compiled_gate=args.require_compiled_gate,
        require_soak=args.require_soak,
        require_abduction_gate=args.require_abduction_gate)
    if problems:
        print(f"check_schema: {args.report} failed validation:",
              file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"check_schema: {args.report} has the expected gate keys")
    return 0


if __name__ == "__main__":
    sys.exit(main())
