"""Benchmark for Table 5.9: proof-language commands for the 57 hard
ArrayList testing methods.

Checks the four category proof scripts of Section 5.2.1 against the
layered prover and prints the command-count accounting next to the
paper's (note=128, assuming=51, pickWitness=22, total=201)."""

from __future__ import annotations

from repro.proof import check_all_scripts, command_count_table, hard_methods
from repro.reporting import table_5_09


def _check_scripts():
    outcomes = check_all_scripts(max_len=3)
    assert all(o.ok for o in outcomes)
    return outcomes


def test_proof_scripts_check(benchmark):
    outcomes = benchmark(_check_scripts)
    print("\n=== Table 5.9 ===")
    print(f"hard methods: {len(hard_methods())} (paper: 57)")
    for outcome in outcomes:
        print(" ", outcome.summary())
    print(table_5_09())
    counts = command_count_table()
    assert counts["total"] > 0
