"""Benchmark for Table 5.10: verify the eight inverse operations.

"All of the eight inverse testing methods verified as generated without
the need for additional Jahob proof commands." — the benchmark re-runs
Property 3 for each inverse over the paper scope and prints the table.
"""

from __future__ import annotations

from repro.inverses import check_all_inverses
from repro.reporting import table_5_10


def _verify(scope):
    results = check_all_inverses(scope)
    assert len(results) == 8
    assert all(r.verified for r in results)
    return results


def test_all_eight_inverses(benchmark, paper_scope):
    results = benchmark(_verify, paper_scope)
    print("\n=== Table 5.10 ===")
    print(table_5_10())
    for result in results:
        print(" ", result.summary())
