"""Ablation benchmark: the commutativity lattice (Chapter 6).

Dropping clauses from a sound-and-complete condition keeps soundness but
trades away completeness — i.e. concurrency.  We quantify the trade for
the contains/add condition: the fraction of actually-commuting cases
each lattice point still admits (its "concurrency recall")."""

from __future__ import annotations

from repro.commutativity import Kind, condition
from repro.commutativity.bounded import (case_environment, commutes,
                                         enumerate_cases)
from repro.commutativity.lattice import lattice_of, soundness_is_preserved
from repro.eval import EvalContext, Scope, evaluate
from repro.specs import get_spec

SCOPE = Scope(objects=("a", "b", "c"))


def _recall(point, cond, spec):
    """Fraction of commuting cases the weakened condition admits."""
    ctx = EvalContext(observe=spec.observe)
    admitted = total = 0
    for case in enumerate_cases(spec, cond.op1, cond.op2, SCOPE):
        if not commutes(spec, cond.op1, cond.op2, case):
            continue
        total += 1
        env = case_environment(cond.op1, cond.op2, case)
        if evaluate(point.formula, env, ctx):
            admitted += 1
    return admitted / total if total else 1.0


def _build_lattice():
    cond = condition("Set", "contains", "add", Kind.BEFORE)
    points = lattice_of(cond, SCOPE)
    assert soundness_is_preserved(points)
    return cond, points


def test_lattice_soundness_and_recall(benchmark):
    cond, points = benchmark(_build_lattice)
    spec = get_spec("Set")
    print("\n=== Commutativity lattice ablation (contains;add before) ===")
    print(f"{'kept clauses':<30} {'sound':<6} {'complete':<9} recall")
    for point in sorted(points, key=lambda p: len(p.kept)):
        recall = _recall(point, cond, spec)
        print(f"{point.text:<30} {str(point.sound):<6} "
              f"{str(point.complete):<9} {recall:.2f}")
        if point.complete:
            assert recall == 1.0
    # Dropping everything (condition 'false') admits no concurrency.
    bottom = next(p for p in points if not p.kept)
    assert _recall(bottom, cond, spec) == 0.0
