#!/usr/bin/env python
"""Trend-check a soak-knee artifact against the committed baseline.

The bench-service leg's ``--soak`` ramp already has a *hard* gate (the
cluster knee must beat the single process within one run); what it
cannot gate is drift across commits — a change that costs 30% of the
saturation knee on both deployments still passes the in-run comparison.
This checker compares the extracted ``KNEE_service.json`` against
``benchmarks/KNEE_service_baseline.json`` and **warns** (never fails:
knee throughput is host-dependent and CI runners are not lab machines)
when a leg's knee committed-ops/s fell more than ``--threshold`` below
the baseline::

    python benchmarks/trend_knee.py KNEE_service.json \
        --baseline benchmarks/KNEE_service_baseline.json

Warnings are emitted both as plain stderr lines and as GitHub
``::warning::`` annotations so they surface on the workflow summary
without failing the leg.  The exit code is 0 unless the *current*
artifact itself is unreadable (exit 2) — a missing or malformed
baseline only warns, so regenerating it is never urgent.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Knee regression fraction past which the trend check warns.
DEFAULT_THRESHOLD = 0.20

#: The deployment legs a knee artifact carries.
LEGS = ("single", "cluster")


def _warn(message: str) -> None:
    print(f"trend_knee: WARNING: {message}", file=sys.stderr)
    # The GitHub annotation renders on the workflow summary; harmless
    # noise when run locally.
    print(f"::warning title=soak knee trend::{message}")


def _knee(payload: dict, leg: str) -> dict | None:
    soak = payload.get("soak")
    if not isinstance(soak, dict):
        return None
    entry = soak.get(leg)
    if not isinstance(entry, dict):
        return None
    knee = entry.get("knee")
    return knee if isinstance(knee, dict) else None


def check_trend(current: dict, baseline: dict,
                threshold: float = DEFAULT_THRESHOLD) -> list[str]:
    """Warning lines for every leg whose knee regressed past
    ``threshold`` (empty = no regression worth flagging)."""
    warnings: list[str] = []
    for leg in LEGS:
        now, then = _knee(current, leg), _knee(baseline, leg)
        if now is None:
            warnings.append(f"{leg}: current artifact has no knee — "
                            f"the soak ramp measured nothing")
            continue
        if then is None:
            continue  # baseline predates this leg; nothing to compare
        try:
            now_ops = float(now["committed_ops_per_second"])
            then_ops = float(then["committed_ops_per_second"])
        except (KeyError, TypeError, ValueError):
            warnings.append(f"{leg}: malformed knee entry "
                            f"(current {now!r}, baseline {then!r})")
            continue
        if then_ops <= 0:
            continue
        drop = 1.0 - now_ops / then_ops
        if drop > threshold:
            warnings.append(
                f"{leg}: knee {now_ops:,.0f} committed ops/s is "
                f"{drop:.0%} below the baseline {then_ops:,.0f} "
                f"(threshold {threshold:.0%}, baseline knee at "
                f"{then.get('clients')} clients, now at "
                f"{now.get('clients')})")
    return warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="path to KNEE_service.json")
    parser.add_argument("--baseline",
                        default="benchmarks/KNEE_service_baseline.json",
                        help="committed knee baseline to compare against")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="warn past this fractional knee drop "
                             "(default 0.20)")
    args = parser.parse_args(argv)
    try:
        with open(args.report, encoding="utf-8") as handle:
            current = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"trend_knee: unreadable {args.report}: {exc}",
              file=sys.stderr)
        return 2
    try:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        _warn(f"unreadable baseline {args.baseline}: {exc} — "
              f"regenerate it from a trusted KNEE_service.json")
        return 0
    warnings = check_trend(current, baseline, args.threshold)
    for line in warnings:
        _warn(line)
    if not warnings:
        for leg in LEGS:
            now, then = _knee(current, leg), _knee(baseline, leg)
            if now and then:
                print(f"trend_knee: {leg}: knee "
                      f"{float(now['committed_ops_per_second']):,.0f} "
                      f"committed ops/s vs baseline "
                      f"{float(then['committed_ops_per_second']):,.0f} "
                      f"— within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
