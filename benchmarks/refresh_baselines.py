#!/usr/bin/env python
"""Regenerate the checked-in bench baselines from a real run.

The CI regression gates compare against
``benchmarks/BENCH_verify_baseline.json`` and
``benchmarks/BENCH_runtime_baseline.json``.  When a legitimate change
moves the numbers (new structures, a faster engine, retimed hardware),
the baselines need a bump — and a hand-edited JSON blob is how gates
rot.  This helper reruns the exact bench invocations CI uses and writes
the fresh payloads over the baseline files, printing the old-vs-new
per-structure deltas so the bump is reviewable::

    PYTHONPATH=src python benchmarks/refresh_baselines.py            # both
    PYTHONPATH=src python benchmarks/refresh_baselines.py --suite runtime

Baselines are recorded on *your* hardware; the gate's
``--max-regression`` slack (2x in CI, with a floor for sub-millisecond
entries) absorbs machine differences, so refresh on a quiet machine and
commit the JSON with the change that moved the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO = BENCH_DIR.parent
sys.path.insert(0, str(REPO / "src"))

from repro.__main__ import main as repro_main  # noqa: E402

#: Baseline file -> the CI bench invocation that regenerates it (the
#: shards=1 leg; the shards=4 leg reuses the same baseline because the
#: regression gate only reads per-structure elapsed times).
SUITES = {
    "verify": (
        BENCH_DIR / "BENCH_verify_baseline.json",
        ["bench", "--backend", "symbolic", "--max-seq-len", "2",
         "--jobs", "2"],
    ),
    "runtime": (
        BENCH_DIR / "BENCH_runtime_baseline.json",
        ["bench", "--suite", "runtime", "--shards", "1", "--stable",
         "--prover", "--compiled"],
    ),
}


def _elapsed_deltas(old: dict, new: dict) -> list[str]:
    lines = []
    old_structures = old.get("structures", {})
    for name, entry in sorted(new.get("structures", {}).items()):
        fresh = entry.get("elapsed")
        prior = old_structures.get(name, {}).get("elapsed")
        if fresh is None:
            continue
        if prior is None:
            lines.append(f"  {name}: (new) {fresh:.3f}s")
        else:
            lines.append(f"  {name}: {prior:.3f}s -> {fresh:.3f}s")
    for name in sorted(set(old_structures) - set(new.get("structures", {}))):
        lines.append(f"  {name}: dropped from the sweep")
    return lines


def refresh(suite: str) -> int:
    baseline, invocation = SUITES[suite]
    try:
        old = json.loads(baseline.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        old = {}
    print(f"refresh_baselines: {suite}: repro "
          + " ".join(invocation + ["--output", baseline.name]))
    code = repro_main(invocation + ["--output", str(baseline)])
    if code != 0:
        print(f"refresh_baselines: {suite} bench failed (exit {code}); "
              f"baseline not trusted — inspect before committing",
              file=sys.stderr)
        return code
    new = json.loads(baseline.read_text(encoding="utf-8"))
    print(f"refresh_baselines: wrote {baseline}")
    for line in _elapsed_deltas(old, new):
        print(line)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=(*SUITES, "all"),
                        default="all",
                        help="which baseline to regenerate (default: all)")
    args = parser.parse_args(argv)
    suites = list(SUITES) if args.suite == "all" else [args.suite]
    for suite in suites:
        code = refresh(suite)
        if code != 0:
            return code
    return 0


if __name__ == "__main__":
    sys.exit(main())
