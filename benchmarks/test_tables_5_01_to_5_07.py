"""Benchmarks for Tables 5.1-5.7: regenerate each condition table and
re-verify (soundness + completeness) every condition it contains.

The paper's Tables 5.1-5.7 are *condition listings*; the measurable
claim behind each is "every listed condition is verified sound and
complete".  Each benchmark therefore re-runs the verification for the
family/kind the table covers and prints the same rows the paper prints.
"""

from __future__ import annotations

import pytest

from repro.commutativity import Kind, all_conditions, check_conditions
from repro.reporting import (table_5_01, table_5_02, table_5_03,
                             table_5_04, table_5_05, table_5_06,
                             table_5_07)
from repro.specs import get_spec


def _verify_family_kind(family, kind, scope):
    spec = get_spec(family)
    groups = {}
    for cond in all_conditions()[family]:
        if cond.kind is kind:
            groups.setdefault((cond.m1, cond.m2), []).append(cond)
    results = []
    for group in groups.values():
        results.extend(check_conditions(spec, group, scope))
    assert all(r.verified for r in results)
    return results


CASES = [
    ("5.1", "Accumulator", Kind.BEFORE, table_5_01),
    ("5.2", "Set", Kind.BEFORE, table_5_02),
    ("5.3", "Set", Kind.BETWEEN, table_5_03),
    ("5.4", "Map", Kind.BEFORE, table_5_04),
    ("5.5", "Map", Kind.AFTER, table_5_05),
    ("5.6", "ArrayList", Kind.BETWEEN, table_5_06),
    ("5.7", "ArrayList", Kind.AFTER, table_5_07),
]


@pytest.mark.parametrize("table_id,family,kind,render",
                         CASES, ids=[c[0] for c in CASES])
def test_condition_table(benchmark, table_id, family, kind, render,
                         paper_scope):
    scope = paper_scope
    if family == "ArrayList":
        # Keep per-iteration time sane; the full-scope sweep is Table 5.8.
        from repro.eval import Scope
        scope = Scope(objects=("a", "b"), max_seq_len=3)
    results = benchmark(_verify_family_kind, family, kind, scope)
    print(f"\n=== Table {table_id} ({family}, {kind} conditions; "
          f"{len(results)} conditions re-verified) ===")
    print(render())
