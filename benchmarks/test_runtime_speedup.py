"""Ablation benchmark: exploitable parallelism under the verified
commutativity conditions vs classical conflict detection.

Chapter 1's motivation: semantic commutativity exposes concurrency that
read/write conflict detection cannot ("operations that insert elements
commute at the semantic level ... they do not commute at the concrete
implementation level").  We run the same disjoint-element transaction
mix under the three gatekeeper policies and report abort counts — the
paper-shaped result is commutativity << read-write <= mutex.
"""

from __future__ import annotations

import random

from repro.runtime import SpeculativeExecutor


def _workload(num_txns=8, ops_per_txn=5, seed=123):
    """Transactions over disjoint key ranges: semantically they all
    commute, but almost every operation is a concrete-level write."""
    rng = random.Random(seed)
    programs = []
    for t in range(num_txns):
        ops = []
        for _ in range(ops_per_txn):
            v = f"t{t}k{rng.randrange(3)}"
            ops.append(rng.choice([
                ("add", (v,)), ("remove", (v,)), ("contains", (v,)),
            ]))
        programs.append(ops)
    return programs


def _run(policy, programs, seed=5):
    report = SpeculativeExecutor("HashSet", policy, seed=seed,
                                 max_rounds=100000).run(programs)
    assert report.serializable
    return report


def test_commutativity_policy(benchmark):
    programs = _workload()
    report = benchmark(_run, "commutativity", programs)
    print(f"\ncommutativity: {report.summary()}")
    assert report.aborts == 0  # disjoint elements: everything commutes


def test_read_write_policy(benchmark):
    programs = _workload()
    report = benchmark(_run, "read-write", programs)
    print(f"\nread-write:    {report.summary()}")
    assert report.aborts > 0


def test_mutex_policy(benchmark):
    programs = _workload()
    report = benchmark(_run, "mutex", programs)
    print(f"\nmutex:         {report.summary()}")
    assert report.aborts > 0


def test_policy_ordering(benchmark):
    """The headline shape: commutativity exposes strictly more
    parallelism (fewer aborts) than RW detection, which beats mutex."""
    programs = _workload()

    def compare():
        return {policy: _run(policy, programs).aborts
                for policy in ("commutativity", "read-write", "mutex")}

    aborts = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(f"\naborts by policy: {aborts}")
    assert aborts["commutativity"] < aborts["read-write"] \
        <= aborts["mutex"]
