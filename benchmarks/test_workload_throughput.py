"""Throughput benchmark: the workload harness over generated (not
hand-written) transaction mixes.

Extends the ablation of ``test_runtime_speedup.py`` from one
hand-written disjoint workload to the parameterized generator: seeded
op-mix/key-distribution workloads over a *shared* key space, swept
through every conflict-detection policy, with the multi-worker executor
measured against the deterministic serial mode on identical programs.
"""

from __future__ import annotations

from repro.reporting import policy_comparison_table
from repro.workloads import (BENCH_WORKLOADS, ThroughputHarness,
                             WorkloadSpec)

STRUCTURES = ("HashSet", "HashTable", "ArrayList", "Accumulator")


def test_policy_sweep_on_generated_workloads(benchmark):
    """The headline table on generated workloads: per structure, the
    commutativity policy admits strictly fewer aborts than read-write
    on at least one non-disjoint workload."""
    harness = ThroughputHarness()

    def sweep():
        return harness.sweep(structures=STRUCTURES,
                             workloads=BENCH_WORKLOADS)

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(policy_comparison_table(runs))
    assert all(run.serializable for run in runs)
    for structure in STRUCTURES:
        wins = [
            workload for workload in BENCH_WORKLOADS
            if _aborts(runs, structure, workload, "commutativity")
            < _aborts(runs, structure, workload, "read-write")]
        assert wins, f"no strict commutativity win for {structure}"


def _aborts(runs, structure, workload, policy):
    return sum(run.aborts for run in runs
               if run.structure == structure
               and run.workload.label == workload.label
               and run.policy == policy)


def test_multi_worker_throughput(benchmark):
    """Batched multi-worker execution of the same generated programs:
    correctness (serializability) at every worker count, throughput
    reported for the curious."""
    workload = WorkloadSpec(name="bench-threads", profile="mixed",
                            transactions=12, ops_per_transaction=8,
                            key_space=12, seed=7)

    def run_all():
        results = {}
        for workers in (1, 2, 4):
            harness = ThroughputHarness(workers=workers, batch=4)
            run = harness.run_one("HashSet", workload)
            assert run.serializable
            assert run.commits == workload.transactions
            results[workers] = run.ops_per_second
        return results

    throughput = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"\nops/s by workers: "
          f"{ {w: round(v) for w, v in throughput.items()} }")
